"""The correlated multi-objective multi-fidelity BO loop (Algorithm 2).

The optimizer owns the paper's full method: tree-pruned design space in,
candidate Pareto set *CS* out.  Every iteration it

1. refits one surrogate stack (per-fidelity correlated multi-objective
   GPs chained non-linearly across fidelities, Fig. 7),
2. evaluates the cost-penalized expected improvement of Pareto
   hypervolume (PEIPV, Eq. (10)) of every unevaluated configuration at
   every fidelity,
3. runs the (simulated) FPGA flow on the single best (config, fidelity)
   pair, pays its simulated runtime, punishes invalid designs 10× the
   observed worst, and feeds the new reports back into every fidelity's
   training set up to the one that was run.

Ablation switches (``correlated``, ``nonlinear``, ``cost_aware``) turn
the same loop into the FPL18 baseline and the paper's implicit design
alternatives — all methods share encodings, spaces and flow, as the
paper requires for fairness.

Hot path.  One BO step is a single cached upward sweep: all fidelities
are scored over one shared candidate pool, so with
``cache_predictions`` the stack computes each level's GP posterior
exactly once per step (bit-for-bit identical to the uncached sweep —
see :mod:`repro.core.multifidelity`), and candidate bookkeeping uses
maintained boolean masks instead of per-step Python rebuilds.
``warm_start`` additionally seeds every hyperparameter refit from the
previous step's optimum with no random restarts, which changes the
optimization trajectory slightly but cuts refit time severalfold
(``benchmarks/bench_optimizer_hotpath.py`` regression-tests both the
speedup and the cached sweep's exactness).  Pass a ``tracer`` to stream
a structured per-step JSONL trace (:mod:`repro.obs.trace`).

Batch mode.  ``batch_size``/``eval_workers`` switch the same optimizer
onto the qPEIPV + async-evaluation engine in :mod:`repro.core.batch`:
a greedy Kriging-believer batch of candidates per round, evaluated
concurrently and committed in proposal order.  ``batch_size=1,
eval_workers=1`` reduces bitwise to the sequential loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core import linalg
from repro.core.acquisition import eipv_mc, penalized_eipv
from repro.core.multifidelity import (
    LinearMultiFidelityStack,
    NonlinearMultiFidelityStack,
)
from repro.core.pareto import (
    default_reference,
    dominated_boxes,
    pareto_front,
    pareto_mask,
)
from repro.core.resilience import journal as run_journal
from repro.core.resilience.retry import (
    RetryPolicy,
    evaluate_with_policy,
    failed_flow_result,
)
from repro.core.result import OptimizationResult, StepRecord
from repro.dse.space import DesignSpace
from repro.hlsim.flow import HlsFlow, _stable_seed
from repro.hlsim.reports import ALL_FIDELITIES, NUM_OBJECTIVES, Fidelity
from repro.obs.spans import NULL_SPANS, SpanRecorder
from repro.obs.timing import Metrics
from repro.obs.trace import TRACE_SCHEMA_VERSION, JsonlTraceWriter


@dataclass
class MFBOSettings:
    """Knobs of Algorithm 2 (paper defaults: 8 initial points, 40 steps)."""

    n_init: tuple[int, int, int] = (8, 6, 4)
    n_iter: int = 40
    n_mc_samples: int = 64
    candidate_pool: int | None = 256
    refit_every: int = 1
    invalid_penalty: float = 10.0
    reference_margin: float = 1.1
    correlated: bool = True
    nonlinear: bool = True
    cost_aware: bool = True
    # Run the believed-Pareto candidates up to IMPL before reporting
    # (paying their flow time).  Any deployable flow must implement its
    # chosen design; the paper's Fig. 8 plots its learned points at
    # their true positions, which presumes exactly this step.
    final_verification: bool = True
    n_restarts: int = 1
    max_opt_iter: int = 60
    # Hot-path switches.  ``cache_predictions`` memoizes the per-step
    # fidelity sweep (bitwise-exact — same selections, less work);
    # ``warm_start`` seeds refits from the previous optimum with no
    # restarts (different but equally valid hyperparameter trajectory).
    cache_predictions: bool = True
    warm_start: bool = True
    # ``incremental`` lets fixed-hyperparameter refits (the commits
    # between true refits, and batch-mode fantasy conditionings) extend
    # the previous Cholesky factor instead of refactorizing
    # (:mod:`repro.core.linalg`) — bitwise-equivalent factors up to
    # roundoff at the last ulp, regression-bounded at 1e-10 and
    # trajectory-tested against the full-refit reference.
    incremental: bool = True
    # Batch mode (qPEIPV + async evaluation, :mod:`repro.core.batch`).
    # ``batch_size`` candidates are proposed per round via greedy
    # Kriging-believer fantasization and evaluated on ``eval_workers``
    # flow workers; results are committed in proposal order so traces
    # stay reproducible for a fixed seed regardless of worker timing.
    # ``batch_engine=None`` auto-enables the batch loop iff either knob
    # exceeds 1; set it to True to force the batch code path even at
    # ``batch_size=1, eval_workers=1`` (bitwise-identical to the
    # sequential loop — regression-tested).
    batch_size: int = 1
    eval_workers: int = 1
    eval_timeout_s: float | None = None
    batch_engine: bool | None = None
    # Async mode (:mod:`repro.core.batch.async_engine`).  Instead of
    # round barriers, ``run_async_loop`` keeps an adaptive number of
    # evaluations in flight, commits each outcome the moment its
    # *modeled* completion time arrives (deterministic — wall timing
    # never shapes the trajectory) and immediately re-proposes against
    # the remaining pending set's Kriging-believer fantasies.
    # ``async_engine=True`` enables it with the adaptive controller
    # (in-flight target grows while fantasies keep moving the Pareto
    # front, shrinks toward 1 when they stop, capped at
    # ``eval_workers``); ``inflight_target`` pins the target instead
    # (and implies async mode).  ``inflight_target=1`` reduces bitwise
    # to the sequential loop — regression-tested.
    async_engine: bool = False
    inflight_target: int | None = None
    # Resilience (:mod:`repro.core.resilience`).  Flow evaluations are
    # retried up to ``retry_max_attempts`` times with exponential
    # backoff (``retry_backoff_s`` base, deterministic jitter from a
    # dedicated run-seeded stream — the acquisition RNG is untouched);
    # on exhaustion the request degrades to the next-lower fidelity
    # (``degrade_on_failure``) and, failing even HLS, commits through
    # the invalid-design punishment path (``punish_on_failure``)
    # instead of aborting the run.  ``journal_path`` appends every
    # commit to a crash-safe JSONL journal; ``resume_from`` replays one
    # for a bitwise-identical continuation of a killed run (when set
    # and ``journal_path`` is not, the journal continues in place).
    retry_max_attempts: int = 3
    retry_backoff_s: float = 0.0
    retry_backoff_mult: float = 2.0
    retry_max_backoff_s: float = 30.0
    retry_jitter: float = 0.25
    degrade_on_failure: bool = True
    punish_on_failure: bool = True
    journal_path: str | None = None
    resume_from: str | None = None
    # Telemetry (:mod:`repro.obs.spans`).  ``trace_spans`` additionally
    # records nested wall-time spans (fit / predict / acquire /
    # flow_eval per fidelity, with (pid, tid) attribution) into the
    # run's JSONL trace for Perfetto export.  Spans read clocks only —
    # never the RNG — so enabling them cannot change selections
    # (regression-tested); they are a no-op without a ``tracer``.
    trace_spans: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.n_init) != len(ALL_FIDELITIES):
            raise ValueError("n_init needs one entry per fidelity")
        lo = min(self.n_init)
        if lo < 2:
            raise ValueError("each fidelity needs at least 2 initial points")
        if any(a < b for a, b in zip(self.n_init, self.n_init[1:])):
            raise ValueError(
                "initial sets must nest: n_hls >= n_syn >= n_impl (paper "
                "Sec. III-D: X_impl ⊆ X_syn ⊆ X_hls)"
            )
        if self.n_iter < 0:
            raise ValueError("n_iter must be non-negative")
        if self.invalid_penalty <= 1.0:
            raise ValueError("invalid_penalty must exceed 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.inflight_target is not None and self.inflight_target < 1:
            raise ValueError("inflight_target must be at least 1")
        if self.use_async_engine and self.batch_size > 1:
            raise ValueError(
                "async mode has no rounds: batch_size must stay 1 "
                "(use inflight_target / eval_workers to size the pipeline)"
            )
        if self.eval_timeout_s is not None and self.eval_timeout_s <= 0:
            raise ValueError("eval_timeout_s must be positive")
        if self.retry_max_attempts < 1:
            raise ValueError("retry_max_attempts must be at least 1")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be non-negative")

    def retry_policy(self) -> RetryPolicy:
        """The evaluation-side :class:`RetryPolicy` these settings imply."""
        return RetryPolicy(
            max_attempts=self.retry_max_attempts,
            base_backoff_s=self.retry_backoff_s,
            backoff_multiplier=self.retry_backoff_mult,
            max_backoff_s=self.retry_max_backoff_s,
            jitter=self.retry_jitter,
            degrade_fidelity=self.degrade_on_failure,
            punish_on_failure=self.punish_on_failure,
        )

    @property
    def use_batch_engine(self) -> bool:
        if self.use_async_engine:
            return False
        if self.batch_engine is not None:
            return self.batch_engine
        return self.batch_size > 1 or self.eval_workers > 1

    @property
    def use_async_engine(self) -> bool:
        return self.async_engine or self.inflight_target is not None

    @property
    def inflight_cap(self) -> int | None:
        """The in-flight target's upper bound; ``None`` for sync runs.

        Journaled in the resume fingerprint: the bound (requested
        ``eval_workers``) shapes async trajectories, while sync runs
        keep worker count a wall-clock-only knob.
        """
        if not self.use_async_engine:
            return None
        return max(1, int(self.eval_workers))


@dataclass
class _FidelityData:
    """Observations collected at one fidelity.

    ``index_set`` mirrors ``indices`` for O(1) membership tests (the
    list alone made :meth:`contains` O(n) and the run O(n²));
    ``punished_rows`` tracks which rows hold punished (invalid-design)
    values so they can be re-scaled when the observed worst grows.
    """

    indices: list[int] = field(default_factory=list)
    values: list[np.ndarray] = field(default_factory=list)
    index_set: set[int] = field(default_factory=set)
    punished_rows: list[int] = field(default_factory=list)

    def contains(self, index: int) -> bool:
        return index in self.index_set

    def add(self, index: int, y: np.ndarray, punished: bool = False) -> None:
        if punished:
            self.punished_rows.append(len(self.values))
        self.indices.append(index)
        self.values.append(np.asarray(y, dtype=float))
        self.index_set.add(index)

    def matrix(self) -> np.ndarray:
        return np.vstack(self.values)


class CorrelatedMFBO:
    """Algorithm 2: correlated multi-objective multi-fidelity BO."""

    def __init__(
        self,
        space: DesignSpace,
        flow: HlsFlow,
        settings: MFBOSettings | None = None,
        method_name: str = "ours",
        tracer: JsonlTraceWriter | None = None,
        engine_factory=None,
    ):
        self.space = space
        self.flow = flow
        self.settings = settings or MFBOSettings()
        self.method_name = method_name
        self.tracer = tracer
        # Optional ``opt -> engine`` hook: builds the evaluation engine
        # the batch/async loops drive instead of the default in-process
        # EvalEngine (e.g. repro.fleet.executor.RemoteExecutor).  The
        # loop closes whatever this returns.
        self.engine_factory = engine_factory
        self.spans = (
            SpanRecorder(tracer)
            if (self.settings.trace_spans and tracer is not None)
            else NULL_SPANS
        )
        self.metrics = Metrics()
        self.rng = np.random.default_rng(self.settings.seed)
        self._data = {f: _FidelityData() for f in ALL_FIDELITIES}
        self._eval_mask = {
            f: np.zeros(len(space), dtype=bool) for f in ALL_FIDELITIES
        }
        self._cs: dict[int, tuple[np.ndarray, Fidelity, bool]] = {}
        self._punished_cs: set[int] = set()
        self._exhausted: set[int] = set()  # configs run at IMPL
        self._runtime = 0.0
        self._history: list[StepRecord] = []
        self._worst_seen: np.ndarray | None = None
        self._last_pool_size = 0
        self._stack = self._build_stack()
        self._retry_policy = self.settings.retry_policy()
        # Backoff jitter draws come from a dedicated run-seeded stream:
        # using ``self.rng`` would perturb the acquisition trajectory of
        # any run that hits a retry, breaking clean-vs-faulty parity.
        self._retry_rng = np.random.default_rng(
            _stable_seed("retry", self.settings.seed)
        )
        self._journal: run_journal.RunJournal | None = None
        self._journal_phase = "init"
        self._replaying = False
        self._verify_attempted: set[int] = set()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _build_stack(self):
        s = self.settings
        if s.nonlinear:
            return NonlinearMultiFidelityStack(
                n_fidelities=len(ALL_FIDELITIES),
                n_tasks=NUM_OBJECTIVES,
                n_restarts=s.n_restarts,
                max_opt_iter=s.max_opt_iter,
                rng=self.rng,
                correlated=s.correlated,
                cache_predictions=s.cache_predictions,
                incremental=s.incremental,
            )
        if s.correlated:
            raise ValueError(
                "a linear *correlated* stack is not implemented; the paper "
                "compares non-linear correlated (ours) against linear "
                "independent (FPL18)"
            )
        return LinearMultiFidelityStack(
            n_fidelities=len(ALL_FIDELITIES),
            n_tasks=NUM_OBJECTIVES,
            n_restarts=s.n_restarts,
            max_opt_iter=s.max_opt_iter,
            rng=self.rng,
            cache_predictions=s.cache_predictions,
            incremental=s.incremental,
        )

    def _initial_design(self) -> None:
        """Nested random initial sets X_impl ⊆ X_syn ⊆ X_hls (line 4)."""
        n_hls, n_syn, n_impl = self.settings.n_init
        n_hls = min(n_hls, len(self.space))
        n_syn = min(n_syn, n_hls)
        n_impl = min(n_impl, n_syn)
        hls_idx = self.space.sample_indices(self.rng, n_hls)
        order = self.rng.permutation(n_hls)
        syn_idx = [hls_idx[i] for i in order[:n_syn]]
        impl_idx = syn_idx[:n_impl]
        syn_set, impl_set = set(syn_idx), set(impl_idx)
        for idx in hls_idx:
            if idx in impl_set:
                fidelity = Fidelity.IMPL
            elif idx in syn_set:
                fidelity = Fidelity.SYN
            else:
                fidelity = Fidelity.HLS
            self._evaluate(idx, fidelity, acquisition=float("nan"), step=-1)

    # ------------------------------------------------------------------
    # evaluation bookkeeping
    # ------------------------------------------------------------------

    def _evaluate(
        self, index: int, fidelity: Fidelity, acquisition: float, step: int
    ) -> None:
        """Run the flow up to ``fidelity`` under the retry policy and
        fold whatever it yields (possibly degraded or punished) in."""
        with self.metrics.timed("eval_s"), self.spans.span(
            "flow_eval", cat="eval", step=step, config_index=index,
            fidelity=fidelity.short_name,
        ):
            outcome = evaluate_with_policy(
                self.flow,
                self.space[index],
                fidelity,
                self._retry_policy,
                rng=self._retry_rng,
            )
        self._fold_outcome(index, fidelity, outcome, acquisition, step)

    def _fold_outcome(
        self, index: int, requested: Fidelity, outcome, acquisition: float,
        step: int,
    ) -> None:
        """Commit a :class:`ResilientOutcome` (shared with the engine)."""
        self._trace_faults(step, index, outcome.failures)
        if outcome.failed:
            if not self._retry_policy.punish_on_failure:
                from repro.core.batch.engine import FlowEvalError

                last = outcome.failures[-1].error if outcome.failures else "?"
                raise FlowEvalError(
                    f"evaluation of config {index} at "
                    f"{requested.short_name} (step {step}) exhausted "
                    f"{outcome.attempts} attempts: {last}"
                )
            self._trace_degrade(step, index, requested, None, outcome.attempts)
            self._commit(
                index,
                requested,
                failed_flow_result(requested),
                acquisition,
                step,
                requested=requested,
                failed=True,
                attempts=outcome.attempts,
                wasted_runtime_s=outcome.wasted_runtime_s,
            )
            return
        if outcome.degraded:
            self._trace_degrade(
                step, index, requested, outcome.fidelity, outcome.attempts
            )
        self._commit(
            index,
            outcome.fidelity,
            outcome.result,
            acquisition,
            step,
            requested=requested,
            degraded=outcome.degraded,
            attempts=outcome.attempts,
            wasted_runtime_s=outcome.wasted_runtime_s,
        )

    def _commit(
        self,
        index: int,
        fidelity,
        result,
        acquisition: float,
        step: int,
        *,
        requested: Fidelity | None = None,
        degraded: bool = False,
        failed: bool = False,
        attempts: int = 1,
        wasted_runtime_s: float = 0.0,
    ) -> None:
        """Fold an already-computed :class:`FlowResult` into the datasets.

        Split out of :meth:`_evaluate` so the batch engine can run flows
        on worker threads and still commit results on the main thread in
        proposal order (completion-order independence).  Non-finite
        objectives in an otherwise-valid report are treated as invalid
        (the punishment path) — a garbage tool report must never reach
        a GP fit or the Pareto front.  Every commit is appended to the
        run journal (when enabled) with the RNG state captured *now*,
        which is what makes kill-and-resume bitwise.
        """
        requested = Fidelity(requested if requested is not None else fidelity)
        self._runtime += result.total_runtime_s + wasted_runtime_s
        top_report = result.highest
        valid = top_report.valid and bool(
            np.all(np.isfinite(top_report.objectives()))
        )
        for report in result.reports:
            if self._data[report.stage].contains(index):
                continue
            y = report.objectives()
            finite = bool(np.all(np.isfinite(y)))
            punished = not (report.valid and finite)
            if punished:
                y = self._punished_value()
            self._data[report.stage].add(index, y, punished=punished)
            self._eval_mask[report.stage][index] = True
            if not punished:
                self._track_worst(y)
        y_top = (
            top_report.objectives() if valid else self._punished_value()
        )
        self._cs[index] = (y_top, fidelity, valid)
        if valid:
            self._punished_cs.discard(index)
        else:
            self._punished_cs.add(index)
        if fidelity == Fidelity.IMPL:
            self._exhausted.add(index)
        if failed:
            # Every fidelity (down to HLS) is exhausted for this config:
            # retire it from the candidate pool so the acquisition never
            # proposes the known-broken evaluation again.
            self._exhausted.add(index)
            self._eval_mask[Fidelity.IMPL][index] = True
        self._history.append(
            StepRecord(
                step=step,
                config_index=index,
                fidelity=fidelity,
                acquisition=acquisition,
                runtime_s=result.total_runtime_s + wasted_runtime_s,
                objectives=y_top,
                valid=valid,
                requested_fidelity=requested,
                degraded=degraded,
                failed=failed,
                attempts=attempts,
            )
        )
        if self._journal is not None and not self._replaying:
            self._journal.write(
                run_journal.commit_record(
                    phase=self._journal_phase,
                    step=step,
                    round_index=(
                        step // self.settings.batch_size
                        if self._journal_phase == "loop"
                        and not self.settings.use_async_engine
                        else -1  # async mode has no rounds
                    ),
                    config_index=index,
                    fidelity=fidelity,
                    requested_fidelity=requested,
                    acquisition=acquisition,
                    result=result,
                    rng_state=self.rng.bit_generator.state,
                    degraded=degraded,
                    failed=failed,
                    attempts=attempts,
                    wasted_runtime_s=wasted_runtime_s,
                )
            )

    def _trace_faults(self, step: int, index: int, failures) -> None:
        if self.tracer is None or not failures:
            return
        for f in failures:
            self.tracer.write(
                {
                    "v": TRACE_SCHEMA_VERSION,
                    "event": "fault",
                    "step": step,
                    "config_index": index,
                    "fidelity": f.fidelity.short_name,
                    "attempt": f.attempt,
                    "error": f.error,
                    "backoff_s": f.backoff_s,
                }
            )

    def _trace_degrade(
        self,
        step: int,
        index: int,
        requested: Fidelity,
        fidelity: Fidelity | None,
        attempts: int,
    ) -> None:
        if self.tracer is None:
            return
        self.tracer.write(
            {
                "v": TRACE_SCHEMA_VERSION,
                "event": "degrade",
                "step": step,
                "config_index": index,
                "requested_fidelity": requested.short_name,
                "fidelity": fidelity.short_name if fidelity else None,
                "action": "degrade" if fidelity is not None else "punish",
                "attempts": attempts,
            }
        )

    def _track_worst(self, y: np.ndarray) -> None:
        if self._worst_seen is None:
            self._worst_seen = np.array(y, dtype=float)
            changed = True
        else:
            grown = np.maximum(self._worst_seen, y)
            changed = bool(np.any(grown > self._worst_seen))
            self._worst_seen = grown
        if changed:
            self._refresh_punishments()

    def _punished_value(self) -> np.ndarray:
        """10× the current worst valid values (paper Sec. IV-C)."""
        if self._worst_seen is None:
            return np.full(NUM_OBJECTIVES, 1e6)
        return self._worst_seen * self.settings.invalid_penalty

    def _refresh_punishments(self) -> None:
        """Re-scale every punished observation to the current worst.

        Punished values were previously snapshotted at evaluation time,
        so an early invalid design kept the ``1e6`` sentinel (or a tiny
        early worst) forever — poisoning every later GP fit and
        inflating the hypervolume reference box.  Recomputing them
        whenever the observed worst grows keeps all punished entries on
        the paper's intended ``penalty × worst_seen`` scale.
        """
        p = self._punished_value()
        for fidelity in ALL_FIDELITIES:
            data = self._data[fidelity]
            for row in data.punished_rows:
                data.values[row] = p
        for idx in self._punished_cs:
            _y, fid, _valid = self._cs[idx]
            self._cs[idx] = (p, fid, False)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(self) -> OptimizationResult:
        plan = self._prepare_journal()
        if self.tracer is not None:
            record = {
                "v": TRACE_SCHEMA_VERSION,
                "event": "run_start",
                "kernel": self.space.kernel.name,
                "method": self.method_name,
                "n_iter": self.settings.n_iter,
                "seed": self.settings.seed,
                "cache_predictions": self.settings.cache_predictions,
                "warm_start": self.settings.warm_start,
            }
            if self.settings.use_batch_engine:
                record["batch_size"] = self.settings.batch_size
                record["eval_workers"] = self.settings.eval_workers
            if self.settings.use_async_engine:
                record["async_engine"] = True
                record["inflight_target"] = self.settings.inflight_target
                record["eval_workers"] = self.settings.eval_workers
            if plan is not None:
                record["resumed"] = True
            self.tracer.write(record)
        try:
            with self.spans.span(
                "run", cat="run",
                kernel=self.space.kernel.name, method=self.method_name,
            ):
                resume_state = None
                if plan is not None:
                    with self.spans.span("replay", cat="phase"):
                        if self.settings.use_async_engine:
                            resume_state = self._replay_async(plan)
                            start_step, start_round = 0, 0
                        else:
                            self._replay(plan)
                            start_step, start_round = (
                                plan.next_step, plan.next_round
                            )
                    loop_done = plan.loop_done
                else:
                    self._journal_phase = "init"
                    with self.spans.span("init", cat="phase"):
                        self._initial_design()
                    start_step, start_round, loop_done = 0, 0, False
                self._journal_phase = "loop"
                if not loop_done:
                    use_engine_loop = (
                        self.settings.use_async_engine
                        or self.settings.use_batch_engine
                    )
                    engine = (
                        self.engine_factory(self)
                        if (self.engine_factory is not None and use_engine_loop)
                        else None
                    )
                    if self.settings.use_async_engine:
                        from repro.core.batch.async_engine import (
                            run_async_loop,
                        )

                        run_async_loop(
                            self, resume=resume_state, engine=engine
                        )
                    elif self.settings.use_batch_engine:
                        from repro.core.batch.engine import run_batch_loop

                        run_batch_loop(
                            self,
                            start_step=start_step,
                            start_round=start_round,
                            engine=engine,
                        )
                    else:
                        self._run_sequential_loop(start=start_step)
                if self.settings.final_verification:
                    self._journal_phase = "verify"
                    with self.spans.span("verify", cat="phase"):
                        self._verify_pareto_candidates()
        finally:
            if self._journal is not None:
                self._journal.close()
        return self._result()

    # ------------------------------------------------------------------
    # journal / resume
    # ------------------------------------------------------------------

    def _expected_init(self) -> int:
        """Commits a complete initial design writes (space-clamped)."""
        return min(self.settings.n_init[0], len(self.space))

    def _prepare_journal(
        self,
    ) -> "run_journal.ReplayPlan | run_journal.AsyncReplayPlan | None":
        """Open the run journal, building a replay plan when resuming.

        ``resume_from`` without an existing journal file (or with one
        whose initial design never completed) degrades to a fresh run —
        the natural first launch of a resumable command.
        """
        s = self.settings
        resume_from = Path(s.resume_from) if s.resume_from else None
        journal_path = Path(s.journal_path) if s.journal_path else resume_from
        plan = None
        if resume_from is not None and resume_from.is_file():
            records = run_journal.read_journal(resume_from)
            if records:
                if s.use_async_engine:
                    plan = run_journal.build_async_replay_plan(
                        records, s, expected_init=self._expected_init()
                    )
                    if not plan.init_records:
                        plan = None
                else:
                    plan = run_journal.build_replay_plan(
                        records, s, expected_init=self._expected_init()
                    )
                    if not plan.segments:
                        plan = None
        if journal_path is None:
            return None
        if plan is not None:
            records = plan.kept_records + [
                {
                    "v": run_journal.JOURNAL_SCHEMA_VERSION,
                    "event": "resume",
                    "replayed": plan.replayed,
                    "dropped": plan.dropped,
                    "next_step": plan.next_step,
                }
            ]
            self._journal = run_journal.RunJournal.continue_from(
                journal_path, records
            )
        else:
            self._journal = run_journal.RunJournal.create(
                journal_path,
                {
                    "v": run_journal.JOURNAL_SCHEMA_VERSION,
                    "event": "header",
                    "kernel": self.space.kernel.name,
                    "method": self.method_name,
                    "seed": s.seed,
                    "fingerprint": run_journal.settings_fingerprint(s),
                },
            )
        return plan

    def _replay(self, plan: run_journal.ReplayPlan) -> None:
        """Re-derive the journaled run state, bitwise.

        Commits replay through the ordinary :meth:`_commit` path (no
        journal writes, no flow runs).  Each journaled loop round
        re-runs its GP *fit* first — warm-started hyperparameter
        trajectories are path-dependent and restart jitter consumes the
        RNG — then hard-restores the round's captured post-selection
        RNG state, so the first live selection sees exactly the
        generator an uninterrupted run would have.
        """
        self._replaying = True
        try:
            for segment in plan.segments:
                self._journal_phase = segment.phase
                if segment.phase == "loop":
                    optimize = (
                        segment.step0 % self.settings.refit_every
                    ) == 0
                    with self.metrics.timed("fit_s"):
                        self._fit_stack(optimize=optimize)
                for record in segment.records:
                    self._commit(**run_journal.commit_kwargs(record))
                self.rng.bit_generator.state = segment.records[-1][
                    "rng_state"
                ]
        finally:
            self._replaying = False
        self._verify_attempted = set(plan.verify_attempted)
        if self.tracer is not None:
            self.tracer.write(
                {
                    "v": TRACE_SCHEMA_VERSION,
                    "event": "resume",
                    "journal": str(self._journal.path)
                    if self._journal
                    else None,
                    "replayed": plan.replayed,
                    "dropped": plan.dropped,
                    "next_step": plan.next_step,
                }
            )

    def _replay_async(self, plan: run_journal.AsyncReplayPlan):
        """Replay an async journal; returns the loop's resume state.

        Delegates to :func:`repro.core.batch.async_engine.replay_async`
        so the live loop and the replay share one fit-sequencing
        implementation (the bitwise-identity requirement).
        """
        from repro.core.batch.async_engine import replay_async

        self._replaying = True
        try:
            state = replay_async(self, plan)
        finally:
            self._replaying = False
        self._verify_attempted = set(plan.verify_attempted)
        if self.tracer is not None:
            self.tracer.write(
                {
                    "v": TRACE_SCHEMA_VERSION,
                    "event": "resume",
                    "journal": str(self._journal.path)
                    if self._journal
                    else None,
                    "replayed": plan.replayed,
                    "dropped": plan.dropped,
                    "next_step": plan.next_step,
                }
            )
        return state

    def _run_sequential_loop(self, start: int = 0) -> None:
        for t in range(start, self.settings.n_iter):
            with self.spans.span("step", cat="step", step=t):
                step_start = time.perf_counter()
                before = self.metrics.snapshot()
                optimize = (t % self.settings.refit_every) == 0
                with self.metrics.timed("fit_s"), self.spans.span(
                    "fit", cat="fit", step=t, optimize=optimize
                ):
                    self._fit_stack(optimize=optimize)
                choice = self._select(t)
                if choice is None:
                    break  # design space exhausted
                index, fidelity, score = choice
                self._evaluate(index, fidelity, acquisition=score, step=t)
                if self.tracer is not None:
                    self._trace_step(step_start, before)

    def _trace_step(self, step_start: float, before: dict) -> None:
        record = self._history[-1]
        delta = Metrics.delta(before, self.metrics.snapshot())
        self.tracer.write(
            {
                "v": TRACE_SCHEMA_VERSION,
                "event": "step",
                "step": record.step,
                "config_index": record.config_index,
                "fidelity": record.fidelity.short_name,
                "pool_size": self._last_pool_size,
                "acquisition": record.acquisition,
                "valid": record.valid,
                "flow_runtime_s": record.runtime_s,
                "fit_s": delta.get("fit_s", 0.0),
                "predict_s": delta.get("predict_s", 0.0),
                "hvi_s": delta.get("hvi_s", 0.0),
                "eval_s": delta.get("eval_s", 0.0),
                "step_s": time.perf_counter() - step_start,
                "cache_hits": int(delta.get("cache_hits", 0)),
                "cache_misses": int(delta.get("cache_misses", 0)),
                "attempts": record.attempts,
                "degraded": record.degraded or record.failed,
            }
        )

    def _verify_pareto_candidates(self) -> None:
        """Run the believed-Pareto candidates up to IMPL (line 16 epilogue).

        Candidates already measured at IMPL keep their reports; the
        others are re-run from scratch (their full flow time is paid)
        and their CS entries replaced by implementation-fidelity values
        — including the 10×-worst punishment if they turn out invalid.

        Iterated to a fixed point: replacing a candidate's value with
        its IMPL measurement can demote it and promote a previously
        dominated, still-unverified configuration into the front, so a
        single sweep over the initial Pareto mask is not enough.  Each
        round implements at least one new candidate, so the loop
        terminates.  ``_verify_attempted`` guards the same guarantee
        under fidelity degradation: a candidate whose IMPL verification
        degraded to a lower fidelity stays below IMPL forever, and
        without the guard the fixed point would re-request it every
        round (the set is seeded from the journal on resume so the
        guard itself resumes bitwise).
        """
        attempted = self._verify_attempted
        while True:
            values = np.vstack([y for (y, _f, _v) in self._cs.values()])
            indices = list(self._cs)
            mask = pareto_mask(values)
            pending = [
                idx
                for idx, keep in zip(indices, mask)
                if keep
                and self._cs[idx][1] != Fidelity.IMPL
                and idx not in attempted
            ]
            if not pending:
                return
            for idx in pending:
                attempted.add(idx)
                self._evaluate(
                    idx, Fidelity.IMPL, acquisition=float("nan"),
                    step=self.settings.n_iter,
                )

    def _fit_stack(self, optimize: bool) -> None:
        datasets: list[tuple[np.ndarray, np.ndarray] | None] = []
        for fidelity in ALL_FIDELITIES:
            data = self._data[fidelity]
            if len(data.indices) < 2:
                # Persistent tool faults can starve a fidelity below
                # the stack's 2-point fit minimum (degradation walks
                # its requests down the ladder; outright failures
                # punish only the requested level).  Mark it for
                # chaining below instead of crashing the fit.  Clean
                # runs always hold >= 2 points per level (``n_init``
                # validation), so this never fires for them.
                datasets.append(None)
                continue
            X = self.space.features[data.indices]
            datasets.append((X, data.matrix()))
        populated = [i for i, d in enumerate(datasets) if d is not None]
        if not populated:
            counts = {
                f.short_name: len(self._data[f].indices)
                for f in ALL_FIDELITIES
            }
            raise RuntimeError(
                "every fidelity is starved below the 2-point fit minimum "
                f"(observation counts: {counts}); the surrogate stack "
                "cannot be fit — the fault load left no usable data at "
                "any level"
            )
        for level, dataset in enumerate(datasets):
            if dataset is not None:
                continue
            # Chain a starved level on the nearest populated level —
            # preferring the one below (the level GP then learns
            # roughly the identity correction, the best unbiased guess
            # with next to no evidence), else the nearest one above:
            # punished commits land only at the *requested* fidelity,
            # so persistent all-stage faults can starve the levels
            # below the requests too.
            lower = [i for i in populated if i < level]
            upper = [i for i in populated if i > level]
            source = lower[-1] if lower else upper[0]
            datasets[level] = datasets[source]
        prefix = "fit" if optimize else "commit"
        with linalg.metered(self.metrics, prefix):
            self._stack.fit(
                datasets,
                optimize=optimize,
                warm_start=self.settings.warm_start,
            )

    def _front_and_reference(self) -> tuple[np.ndarray, np.ndarray]:
        values = [y for (y, _f, valid) in self._cs.values() if valid]
        if not values:
            values = [y for (y, _f, _v) in self._cs.values()]
        Y = np.vstack(values)
        front = pareto_front(Y)
        ref = default_reference(Y, margin=self.settings.reference_margin)
        return front, ref

    def _candidate_pool(
        self, exclude: set[int] | None = None
    ) -> np.ndarray:
        """Shared candidate pool: configs not yet exhausted at IMPL.

        One subsample serves every fidelity's scan (the IMPL-eligible
        set is the superset of all of them under the nesting invariant),
        so the per-fidelity PEIPV comparison runs on common candidates
        and common random numbers.  ``exclude`` additionally masks out
        configurations pending in the current batch round; when empty or
        None the rng consumption is identical to the unparameterized
        call (q=1 parity depends on this).
        """
        mask = ~self._eval_mask[Fidelity.IMPL]
        if exclude:
            mask = mask.copy()
            mask[list(exclude)] = False
        pool = np.flatnonzero(mask)
        limit = self.settings.candidate_pool
        if limit is not None and pool.size > limit:
            pool = self.rng.choice(pool, size=limit, replace=False)
        return pool

    def _scan_best(
        self,
        pool: np.ndarray,
        front: np.ndarray,
        ref: np.ndarray,
        boxes,
        exclude: set[int] | None = None,
    ) -> tuple[int, Fidelity, float] | None:
        """Per-fidelity argmax of PEIPV over ``pool``, then the global max.

        All fidelities are scored over one shared candidate matrix: the
        needed fidelities are predicted in one batched bottom-up sweep
        (:meth:`predict_levels` — each chain level computed exactly
        once, results bitwise identical to per-level ``predict``); a
        fidelity's already-evaluated configurations are masked out of
        its argmax rather than re-pooled.  ``exclude`` masks batch-round
        pending configurations out of every fidelity's argmax.
        """
        metrics = self.metrics
        X = self.space.features[pool]
        stack = self._stack
        stack.begin_step()
        hits0, misses0 = stack.cache_hits, stack.cache_misses
        t_impl = self.flow.stage_time(Fidelity.IMPL)
        pending = (
            np.isin(pool, list(exclude)) if exclude else
            np.zeros(pool.size, dtype=bool)
        )
        eligibility: dict[Fidelity, np.ndarray] = {}
        for fidelity in ALL_FIDELITIES:
            eligible = ~self._eval_mask[fidelity][pool] & ~pending
            if eligible.any():
                eligibility[fidelity] = eligible
        if not eligibility:
            return None
        with metrics.timed("predict_s"), self.spans.span(
            "predict", cat="predict",
            fidelity=",".join(f.short_name for f in eligibility),
        ):
            predictions = stack.predict_levels(
                [int(f) for f in eligibility], X
            )
        best: tuple[int, Fidelity, float] | None = None
        for fidelity, eligible in eligibility.items():
            means, covs = predictions[int(fidelity)]
            with metrics.timed("hvi_s"), self.spans.span(
                "acquire", cat="acquire", fidelity=fidelity.short_name
            ):
                scores = eipv_mc(
                    means,
                    covs,
                    front,
                    ref,
                    rng=self.rng,
                    n_samples=self.settings.n_mc_samples,
                    boxes=boxes,
                )
                if self.settings.cost_aware:
                    scores = penalized_eipv(
                        scores, t_impl, self.flow.stage_time(fidelity)
                    )
            scores = np.where(eligible, scores, -np.inf)
            k = int(np.argmax(scores))
            score = float(scores[k])
            if best is None or score > best[2]:
                best = (int(pool[k]), fidelity, score)
        metrics.incr("cache_hits", stack.cache_hits - hits0)
        metrics.incr("cache_misses", stack.cache_misses - misses0)
        return best

    def _select(self, step: int) -> tuple[int, Fidelity, float] | None:
        """Lines 7–11: pool + Pareto decomposition, then the PEIPV scan."""
        front, ref = self._front_and_reference()
        with self.metrics.timed("hvi_s"):
            boxes = dominated_boxes(front, ref)
        pool = self._candidate_pool()
        self._last_pool_size = int(pool.size)
        if pool.size == 0:
            return None
        return self._scan_best(pool, front, ref, boxes)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------

    def _result(self) -> OptimizationResult:
        indices = sorted(self._cs)
        values = np.vstack([self._cs[i][0] for i in indices]) if indices else (
            np.empty((0, NUM_OBJECTIVES))
        )
        fidelities = [self._cs[i][1] for i in indices]
        counts = {
            f.short_name: len(self._data[f].indices) for f in ALL_FIDELITIES
        }
        return OptimizationResult(
            kernel_name=self.space.kernel.name,
            method=self.method_name,
            cs_indices=indices,
            cs_values=values,
            cs_fidelities=fidelities,
            history=self._history,
            total_runtime_s=self._runtime,
            evaluation_counts=counts,
        )
