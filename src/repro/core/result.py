"""Optimization run records and results."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.pareto import pareto_mask
from repro.hlsim.reports import Fidelity


@dataclass(frozen=True)
class StepRecord:
    """One iteration of Algorithm 2: which point, which fidelity, cost.

    ``requested_fidelity``/``degraded``/``failed`` record the
    resilience layer's interventions: a degraded step committed its
    result at a *lower* fidelity than the acquisition requested (retry
    exhaustion — see :mod:`repro.core.resilience.retry`), a failed step
    exhausted every fidelity and carries punished objectives.
    ``runtime_s`` includes the nominal tool time wasted on failed
    attempts.
    """

    step: int
    config_index: int
    fidelity: Fidelity
    acquisition: float
    runtime_s: float
    objectives: np.ndarray
    valid: bool
    requested_fidelity: Fidelity | None = None
    degraded: bool = False
    failed: bool = False
    attempts: int = 1


@dataclass
class OptimizationResult:
    """Output of a design-space-exploration run.

    ``cs_indices`` / ``cs_values`` form the candidate Pareto set *CS*
    of Algorithm 2 — each configuration paired with its report at the
    highest fidelity it was run at (invalid designs carry punished
    values).  ``total_runtime_s`` is the simulated tool time, the
    quantity behind Table I's "overall running time".
    """

    kernel_name: str
    method: str
    cs_indices: list[int] = field(default_factory=list)
    cs_values: np.ndarray = field(default_factory=lambda: np.empty((0, 3)))
    cs_fidelities: list[Fidelity] = field(default_factory=list)
    history: list[StepRecord] = field(default_factory=list)
    total_runtime_s: float = 0.0
    evaluation_counts: dict[str, int] = field(default_factory=dict)

    def pareto_indices(self) -> list[int]:
        """Configuration indices of the learned (non-dominated) set."""
        if len(self.cs_indices) == 0:
            return []
        mask = pareto_mask(self.cs_values)
        return [idx for idx, keep in zip(self.cs_indices, mask) if keep]

    def pareto_values(self) -> np.ndarray:
        """Objective vectors of the learned Pareto set (as recorded)."""
        if len(self.cs_indices) == 0:
            return np.empty((0, self.cs_values.shape[1] if self.cs_values.size else 3))
        mask = pareto_mask(self.cs_values)
        return self.cs_values[mask]

    def fidelity_histogram(self) -> dict[str, int]:
        """How many BO steps ran at each fidelity."""
        counts = {f.short_name: 0 for f in Fidelity}
        for record in self.history:
            counts[record.fidelity.short_name] += 1
        return counts

    def degraded_indices(self) -> list[int]:
        """Configs whose *reported* value came from a degraded or failed
        evaluation — ADRS reporting should flag these points.

        A later clean commit (e.g. the final verification re-running the
        config at IMPL) supersedes an earlier degraded one, so only the
        last record per configuration counts.
        """
        last: dict[int, bool] = {}
        for r in self.history:
            last[r.config_index] = r.degraded or r.failed
        return [idx for idx in self.cs_indices if last.get(idx, False)]

    def degraded_steps(self) -> list[StepRecord]:
        """History records the resilience layer intervened on."""
        return [r for r in self.history if r.degraded or r.failed]
