"""Fault tolerance for the BO runtime.

Three pillars (DESIGN.md Sec. 10):

- :mod:`repro.core.resilience.retry` — configurable retry/backoff with
  graceful fidelity degradation and punished total failures.
- :mod:`repro.core.resilience.journal` — crash-safe JSONL run journal
  with bitwise-identical resume (RNG state captured per commit).
- :mod:`repro.core.resilience.faults` — deterministic fault injection
  (:class:`FaultyFlow` for the flow tier, :class:`FaultyTransport` for
  the fleet network tier) for chaos tests, ``bench_resilience`` and
  ``bench_fleet_chaos``.
"""

from repro.core.resilience.faults import (
    FaultSpec,
    FaultyFlow,
    FaultyTransport,
    InjectedFlowCrash,
)
from repro.core.resilience.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalError,
    ReplayPlan,
    RunJournal,
    build_replay_plan,
    read_journal,
)
from repro.core.resilience.retry import (
    AttemptFailure,
    ResilientOutcome,
    RetryPolicy,
    evaluate_with_policy,
    failed_flow_result,
)
from repro.core.resilience.signals import terminate_on_signals

__all__ = [
    "AttemptFailure",
    "FaultSpec",
    "FaultyFlow",
    "FaultyTransport",
    "InjectedFlowCrash",
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "ReplayPlan",
    "ResilientOutcome",
    "RetryPolicy",
    "RunJournal",
    "build_replay_plan",
    "evaluate_with_policy",
    "failed_flow_result",
    "read_journal",
    "terminate_on_signals",
]
