"""Retry policy and resilient flow evaluation.

Real HLS/implementation tool invocations crash, hang and emit garbage
reports routinely; a multi-hour sweep must survive them.  This module
replaces the batch engine's hard-coded retry-once with a configurable
:class:`RetryPolicy` (max attempts, exponential backoff with
deterministic jitter, per-exception-class rules) and adds **graceful
fidelity degradation**: when a high-fidelity evaluation exhausts its
retries, :func:`evaluate_with_policy` falls back to the next-lower
fidelity instead of killing the run.  A degraded or outright-failed
evaluation is reported distinctly (:class:`ResilientOutcome`) so the
optimizer can apply the paper's punishment accounting and ADRS
reporting can flag the affected points.

Determinism: the policy itself consumes no randomness.  Backoff jitter
comes from an *optional* caller-provided RNG that is only drawn from
when a retry actually sleeps — a clean (fault-free) run takes the exact
code path it always did, which the q=1/w=1 parity benchmarks pin down.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field

import numpy as np

from repro.hlsim.reports import Fidelity, FlowResult, StageReport

__all__ = [
    "AttemptFailure",
    "RetryPolicy",
    "ResilientOutcome",
    "evaluate_with_policy",
    "failed_flow_result",
]


@dataclass(frozen=True)
class RetryPolicy:
    """What gets retried, how often, and what happens on exhaustion.

    ``retry_on`` / ``give_up_on`` classify worker exceptions: a
    ``give_up_on`` match stops retrying at the current fidelity
    immediately (e.g. a deterministic tool-input error that will never
    succeed), a ``retry_on`` match is retried up to ``max_attempts``
    with exponential backoff, and anything matching neither is a
    programming error that propagates unchanged.  On exhaustion,
    ``degrade_fidelity`` walks the request down the fidelity ladder
    (IMPL → SYN → HLS) with a fresh attempt budget per level; when even
    HLS is exhausted the evaluation is *failed* and — under
    ``punish_on_failure`` — committed through the paper's
    invalid-design punishment path instead of aborting the run.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.0
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 30.0
    jitter: float = 0.25
    degrade_fidelity: bool = True
    punish_on_failure: bool = True
    #: Treat a report with non-finite objectives as a failed attempt
    #: (tool wrote a truncated/garbage report) instead of returning it.
    retry_garbage: bool = True
    retry_on: tuple[type[BaseException], ...] = (Exception,)
    give_up_on: tuple[type[BaseException], ...] = ()

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_backoff_s < 0:
            raise ValueError("base_backoff_s must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")

    def classify(self, exc: BaseException) -> str:
        """``"give_up"`` | ``"retry"`` | ``"fatal"`` for one exception."""
        if self.give_up_on and isinstance(exc, self.give_up_on):
            return "give_up"
        if isinstance(exc, self.retry_on):
            return "retry"
        return "fatal"

    def backoff_s(self, attempt: int, rng: np.random.Generator | None) -> float:
        """Sleep before retry number ``attempt`` (2 = first retry).

        Exponential in the attempt index, capped, with multiplicative
        jitter in ``[1, 1 + jitter]`` drawn from ``rng``.  The RNG is
        only touched when the delay is non-zero, so zero-backoff
        configurations stay draw-free.
        """
        if self.base_backoff_s <= 0.0:
            return 0.0
        delay = self.base_backoff_s * self.backoff_multiplier ** max(
            0, attempt - 2
        )
        delay = min(delay, self.max_backoff_s)
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * float(rng.uniform(0.0, 1.0))
        return delay


@dataclass(frozen=True)
class AttemptFailure:
    """One failed flow attempt (for trace ``fault`` events)."""

    fidelity: Fidelity
    attempt: int
    error: str
    backoff_s: float


@dataclass
class ResilientOutcome:
    """What :func:`evaluate_with_policy` actually obtained.

    ``fidelity`` is the fidelity of ``result`` (may be lower than
    ``requested`` when degradation kicked in); ``failed`` means every
    level down to HLS was exhausted and ``result`` is ``None``.
    ``wasted_runtime_s`` charges each failed attempt the *nominal*
    stage time of the fidelity it ran at — crashes of a real tool still
    burn its wall clock, and Table-1-style runtime accounting must see
    that cost.
    """

    result: FlowResult | None
    requested: Fidelity
    fidelity: Fidelity
    attempts: int
    degraded: bool
    failed: bool
    wasted_runtime_s: float
    failures: list[AttemptFailure] = field(default_factory=list)


def evaluate_with_policy(
    flow,
    config,
    fidelity: Fidelity,
    policy: RetryPolicy,
    rng: np.random.Generator | None = None,
    sleep=time.sleep,
) -> ResilientOutcome:
    """Run ``flow`` under ``policy``, degrading fidelity on exhaustion.

    Fault-free evaluations return after a single ``flow.run`` with no
    extra work (the resilience layer is a no-op on the happy path).
    Exceptions the policy does not cover propagate unchanged.
    """
    requested = Fidelity(fidelity)
    level = requested
    attempts = 0
    wasted = 0.0
    failures: list[AttemptFailure] = []
    while True:
        level_attempts = 0
        while level_attempts < policy.max_attempts:
            level_attempts += 1
            attempts += 1
            try:
                result = flow.run(config, upto=level)
                if policy.retry_garbage:
                    garbage = _garbage_stage(result)
                    if garbage is not None:
                        raise _GarbageReport(
                            f"non-finite objectives in "
                            f"{garbage.short_name} report"
                        )
            except Exception as exc:
                kind = (
                    "retry"
                    if isinstance(exc, _GarbageReport)
                    else policy.classify(exc)
                )
                if kind == "fatal":
                    raise
                wasted += float(flow.stage_time(level))
                delay = 0.0
                retriable = (
                    kind == "retry"
                    and level_attempts < policy.max_attempts
                )
                if retriable:
                    delay = policy.backoff_s(level_attempts + 1, rng)
                failures.append(
                    AttemptFailure(
                        fidelity=level,
                        attempt=attempts,
                        error=_last_line(exc),
                        backoff_s=delay,
                    )
                )
                if not retriable:
                    break
                if delay > 0.0:
                    sleep(delay)
                continue
            return ResilientOutcome(
                result=result,
                requested=requested,
                fidelity=level,
                attempts=attempts,
                degraded=level != requested,
                failed=False,
                wasted_runtime_s=wasted,
                failures=failures,
            )
        if policy.degrade_fidelity and level > Fidelity.HLS:
            level = Fidelity(int(level) - 1)
            continue
        return ResilientOutcome(
            result=None,
            requested=requested,
            fidelity=requested,
            attempts=attempts,
            degraded=False,
            failed=True,
            wasted_runtime_s=wasted,
            failures=failures,
        )


class _GarbageReport(RuntimeError):
    """Internal marker: a report came back with non-finite objectives."""


def _garbage_stage(result: FlowResult) -> Fidelity | None:
    """First stage whose *valid* report carries non-finite objectives."""
    for report in result.reports:
        if report.valid and not np.all(np.isfinite(report.objectives())):
            return report.stage
    return None


def failed_flow_result(fidelity: Fidelity) -> FlowResult:
    """Synthetic invalid :class:`FlowResult` for an exhausted evaluation.

    A single ``valid=False`` report at ``fidelity`` with NaN metrics:
    committing it routes the configuration through the optimizer's
    existing invalid-design punishment path (and the NaN guard), so a
    permanently-broken evaluation costs one punished observation, not
    the run.  The wasted tool time of the failed attempts is accounted
    separately (:attr:`ResilientOutcome.wasted_runtime_s`), so the
    report itself carries none.
    """
    nan = float("nan")
    report = StageReport(
        stage=Fidelity(fidelity),
        latency_cycles=nan,
        clock_ns=nan,
        lut=nan,
        ff=nan,
        dsp=nan,
        bram18=nan,
        power_w=nan,
        lut_util=nan,
        valid=False,
        runtime_s=0.0,
    )
    return FlowResult(reports=(report,), total_runtime_s=0.0)


def _last_line(exc: BaseException) -> str:
    lines = traceback.format_exception_only(type(exc), exc)
    return lines[-1].strip() if lines else repr(exc)
