"""Deterministic fault injection for chaos testing the BO runtime.

:class:`FaultyFlow` wraps any :class:`repro.hlsim.flow.HlsFlow` and
injects a *seeded schedule* of tool failures — crashes (exceptions),
hangs (sleeps), and garbage reports (NaN metrics) — with per-fidelity
rates.  The schedule is a pure function of ``(seed, kernel, config,
stage)``, so two runs with the same spec hit the exact same faults
regardless of worker count or completion order, and the chaos tests /
``benchmarks/bench_resilience.py`` can assert convergence and resume
determinism under a known fault load.

Fault persistence is controlled by ``transient_attempts``: each faulty
stage fails the first *k* times it is executed for a given
configuration (counted across worker clones via a shared, lock-guarded
table), then succeeds — so with ``k < RetryPolicy.max_attempts`` the
retried run commits the exact same results as a clean run.
``persistent=True`` makes faults permanent, exercising fidelity
degradation and the punishment path instead.

:class:`FaultyTransport` is the same idea lifted to the *network* tier:
a deterministic seeded schedule of connection refusals, dropped
responses, latency spikes and duplicated deliveries injected at the
:class:`repro.fleet.client.BrokerClient` transport seam, plus an
optional heartbeat blackout window.  Because every injected failure is
either pre-delivery (refusal) or post-delivery of an idempotent route
(drop/duplicate), the fleet's retry machinery must — and the chaos
bench asserts it does — converge to bitwise-identical results.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.hlsim.flow import _stable_seed
from repro.hlsim.reports import ALL_FIDELITIES, Fidelity, FlowResult

__all__ = [
    "FaultSpec",
    "FaultyFlow",
    "FaultyTransport",
    "InjectedFlowCrash",
]


class InjectedFlowCrash(RuntimeError):
    """A deterministic, injected tool crash (chaos testing only)."""


@dataclass(frozen=True)
class FaultSpec:
    """Seeded fault schedule of one chaos scenario.

    Rates are either a scalar (same at every fidelity) or a
    ``{Fidelity: rate}`` mapping; per (config, stage) a single uniform
    draw decides crash vs. hang vs. garbage vs. nothing, so the total
    fault rate is the sum of the three.
    """

    seed: int = 0
    crash_rate: float | dict = 0.0
    hang_rate: float | dict = 0.0
    garbage_rate: float | dict = 0.0
    #: A faulty stage fails its first N executions, then succeeds.
    transient_attempts: int = 1
    #: Never recover (overrides ``transient_attempts``).
    persistent: bool = False
    #: Wall-clock sleep of an injected hang (before running normally).
    hang_s: float = 0.05

    def rate(self, kind: str, stage: Fidelity) -> float:
        raw = getattr(self, f"{kind}_rate")
        if isinstance(raw, dict):
            return float(raw.get(stage, raw.get(int(stage), 0.0)))
        return float(raw)


@dataclass
class _SharedState:
    """Execution counters shared across worker clones of one flow."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    executions: dict[tuple, int] = field(default_factory=dict)
    injected: int = 0

    def next_execution(self, key: tuple) -> int:
        with self.lock:
            count = self.executions.get(key, 0) + 1
            self.executions[key] = count
            return count

    def record_injection(self) -> None:
        with self.lock:
            self.injected += 1


class FaultyFlow:
    """A fault-injecting proxy around a real flow.

    Delegates everything to the wrapped flow; ``run`` first walks the
    stage prefix and fires any scheduled fault for each stage, in
    order — a crash at SYN aborts the whole invocation exactly like a
    real tool chain would.  Garbage faults corrupt the affected stage's
    report (NaN metrics, ``valid`` untouched), which is what a truncated
    or mis-parsed tool report looks like downstream.
    """

    def __init__(self, inner, spec: FaultSpec, _shared=None):
        self._inner = inner
        self.spec = spec
        self._shared = _shared or _SharedState()

    # -- delegation ----------------------------------------------------

    @property
    def kernel(self):
        return self._inner.kernel

    @property
    def schema(self):
        return self._inner.schema

    @property
    def device(self):
        return self._inner.device

    @property
    def injected_faults(self) -> int:
        """Total faults fired so far (all clones)."""
        return self._shared.injected

    def stage_time(self, upto: Fidelity) -> float:
        return self._inner.stage_time(upto)

    def reports(self, config):
        return self._inner.reports(config)

    def objectives(self, config, fidelity: Fidelity):
        return self._inner.objectives(config, fidelity)

    def sweep(self, configs, fidelity: Fidelity):
        return self._inner.sweep(configs, fidelity)

    def validity(self, configs):
        return self._inner.validity(configs)

    def clone(self) -> "FaultyFlow":
        """Worker clone sharing the fault schedule *and* counters."""
        return FaultyFlow(self._inner.clone(), self.spec, self._shared)

    # -- fault schedule ------------------------------------------------

    def _scheduled_fault(self, config, stage: Fidelity) -> str | None:
        spec = self.spec
        u = self._uniform(config, stage)
        edge = 0.0
        for kind in ("crash", "hang", "garbage"):
            edge += spec.rate(kind, stage)
            if u < edge:
                return kind
        return None

    def _uniform(self, config, stage: Fidelity) -> float:
        seed = _stable_seed(
            "fault", self.spec.seed, self.kernel.name, config.values,
            int(stage),
        )
        return float(np.random.default_rng(seed).uniform())

    def _fires(self, config, stage: Fidelity, kind: str) -> bool:
        if kind is None:
            return False
        if self.spec.persistent:
            self._shared.record_injection()
            return True
        key = (config.values, int(stage))
        count = self._shared.next_execution(key)
        if count <= self.spec.transient_attempts:
            self._shared.record_injection()
            return True
        return False

    # -- execution -----------------------------------------------------

    def run(self, config, upto: Fidelity = Fidelity.IMPL) -> FlowResult:
        garbage_stages = []
        for stage in ALL_FIDELITIES:
            if stage > upto:
                break
            kind = self._scheduled_fault(config, stage)
            if kind is None or not self._fires(config, stage, kind):
                continue
            if kind == "crash":
                raise InjectedFlowCrash(
                    f"injected crash at {stage.short_name} for config "
                    f"{config.values}"
                )
            if kind == "hang":
                time.sleep(self.spec.hang_s)
            elif kind == "garbage":
                garbage_stages.append(stage)
        result = self._inner.run(config, upto=upto)
        if not garbage_stages:
            return result
        return _corrupt(result, garbage_stages)


class FaultyTransport:
    """Deterministic network-fault injector for the fleet client seam.

    Plugs into ``BrokerClient(transport=...)``: each call receives the
    single-shot sender plus the request and decides, from a seeded
    per-call-index draw, whether to deliver it cleanly or inject one
    fault first::

        refuse    — raise ConnectionRefusedError *before* delivery
        drop      — deliver, then raise (response lost; tests that the
                    route is idempotent under retry)
        latency   — sleep ``latency_s``, then deliver
        duplicate — deliver twice, return the second response

    ``blackout`` optionally refuses every request whose path matches
    ``blackout_path`` within a call-index window — modelling a
    partition that starves heartbeats until the lease expires.  The
    schedule is a pure function of ``(seed, call_index)``, so a rerun
    of the same request sequence injects the same faults.
    """

    def __init__(
        self,
        seed: int = 0,
        refuse_rate: float = 0.0,
        drop_rate: float = 0.0,
        latency_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        latency_s: float = 0.05,
        blackout: tuple[int, int] | None = None,
        blackout_path: str = "/heartbeat",
    ):
        self.seed = int(seed)
        self.refuse_rate = float(refuse_rate)
        self.drop_rate = float(drop_rate)
        self.latency_rate = float(latency_rate)
        self.duplicate_rate = float(duplicate_rate)
        self.latency_s = float(latency_s)
        self.blackout = blackout
        self.blackout_path = blackout_path
        self.calls = 0
        self.injected: dict[str, int] = {
            "refuse": 0, "drop": 0, "latency": 0, "duplicate": 0,
            "blackout": 0,
        }
        self._lock = threading.Lock()

    def _draw(self, index: int) -> str | None:
        u = float(
            np.random.default_rng(
                _stable_seed("transport", self.seed, index)
            ).uniform()
        )
        edge = 0.0
        for kind in ("refuse", "drop", "latency", "duplicate"):
            edge += getattr(self, f"{kind}_rate")
            if u < edge:
                return kind
        return None

    def __call__(self, send, method: str, path: str, body, ctype: str):
        with self._lock:
            index = self.calls
            self.calls += 1
        route = path.partition("?")[0]
        if (
            self.blackout is not None
            and route == self.blackout_path
            and self.blackout[0] <= index < self.blackout[1]
        ):
            with self._lock:
                self.injected["blackout"] += 1
            raise ConnectionRefusedError(
                f"injected blackout of {route} (call {index})"
            )
        kind = self._draw(index)
        if kind == "refuse":
            with self._lock:
                self.injected["refuse"] += 1
            raise ConnectionRefusedError(f"injected refusal (call {index})")
        if kind == "latency":
            with self._lock:
                self.injected["latency"] += 1
            time.sleep(self.latency_s)
            return send(method, path, body, ctype)
        if kind == "drop":
            send(method, path, body, ctype)  # delivered; response lost
            with self._lock:
                self.injected["drop"] += 1
            raise ConnectionResetError(
                f"injected mid-body drop (call {index})"
            )
        if kind == "duplicate":
            send(method, path, body, ctype)
            with self._lock:
                self.injected["duplicate"] += 1
            return send(method, path, body, ctype)
        return send(method, path, body, ctype)


def _corrupt(result: FlowResult, stages: list[Fidelity]) -> FlowResult:
    """NaN out the objective-bearing metrics of the chosen stages."""
    import dataclasses

    nan = float("nan")
    reports = []
    for report in result.reports:
        if report.stage in stages:
            report = dataclasses.replace(
                report,
                latency_cycles=nan,
                clock_ns=nan,
                power_w=nan,
                lut_util=nan,
            )
        reports.append(report)
    return FlowResult(
        reports=tuple(reports), total_runtime_s=result.total_runtime_s
    )
