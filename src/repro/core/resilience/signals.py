"""Graceful termination on SIGTERM/SIGINT.

``SIGTERM``'s default disposition kills the process without unwinding
the stack — ``finally`` blocks, ``atexit`` hooks and context managers
never run, so worker pools linger and atomic-write temp files leak.
:func:`terminate_on_signals` converts the signal into a raised
``SystemExit`` so normal cleanup (journal close, pool shutdown, temp
unlink) happens on the way out; the sweep's journal makes the
interrupted run resumable afterwards.
"""

from __future__ import annotations

import contextlib
import signal

__all__ = ["terminate_on_signals"]


@contextlib.contextmanager
def terminate_on_signals(signals=(signal.SIGTERM,)):
    """Raise ``SystemExit(128 + signum)`` inside the block on delivery.

    Only the main thread may install handlers; anywhere else (worker
    threads, nested pools) this is a no-op passthrough.  Previous
    handlers are restored on exit.
    """

    def _handler(signum, frame):
        raise SystemExit(128 + signum)

    previous = {}
    try:
        for sig in signals:
            previous[sig] = signal.signal(sig, _handler)
    except ValueError:  # not the main thread
        for sig, old in previous.items():
            signal.signal(sig, old)
        previous = {}
    try:
        yield
    finally:
        for sig, old in previous.items():
            try:
                signal.signal(sig, old)
            except ValueError:
                pass
