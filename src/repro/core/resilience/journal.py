"""Append-only, crash-safe run journal with bitwise replay.

Every commit of a BO run — initial design, loop rounds, final
verification — is appended to a JSONL journal (atomic line writes,
``fsync`` per line, schema-versioned alongside the trace schema).  A
killed run resumes by *replaying* the journaled commits through the
optimizer's ordinary ``_commit`` path and restoring the captured RNG
state, so the resumed run is **bitwise identical** to an uninterrupted
one:

- Floats survive exactly (``json`` emits the shortest round-tripping
  repr; non-finite values use explicit ``"NaN"``/``"Infinity"``
  sentinels so the file stays strict JSON).
- The generator state of the optimizer's ``numpy`` RNG (PCG64) is
  captured at every commit.  Replay re-runs each journaled round's GP
  *fit* (warm-started hyperparameter trajectories are path-dependent,
  and restart jitter consumes the RNG), skips the selection and flow
  evaluation, then hard-restores the journaled post-selection state —
  cheaper than the run, yet state-identical to it.
- A crash can only truncate the final line; :func:`read_journal`
  tolerates a torn tail.  A batch round interrupted mid-commit is
  dropped whole and re-selected on resume (selection is deterministic
  from the restored state, so the re-run is bitwise too).

Async runs (``run_async_loop``) additionally journal every *proposal*
(:func:`propose_record`): the chosen candidate, its Kriging-believer
fantasy values per fidelity level, the modeled completion time and the
post-proposal RNG state.  Any journal prefix is then a consistent
snapshot — proposals without a matching commit are exactly the pending
set, resubmitted verbatim on resume, so async kill-and-resume is
bitwise too (:func:`build_async_replay_plan`).
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any

from repro.hlsim.reports import Fidelity, FlowResult, StageReport

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "RunJournal",
    "AsyncReplayPlan",
    "ReplayPlan",
    "ReplaySegment",
    "build_async_replay_plan",
    "build_replay_plan",
    "commit_record",
    "propose_record",
    "propose_kwargs",
    "read_journal",
    "tail_complete",
    "serialize_result",
    "deserialize_result",
    "settings_fingerprint",
]

#: Bump when a journal field is added, removed or changes meaning.
#: v2 added the async-pipeline ``propose`` event plus the
#: ``async_engine``/``inflight_target`` fingerprint fields.
JOURNAL_SCHEMA_VERSION = 2

#: Settings that shape the optimization *trajectory* — a resumed run
#: must share all of them with the journaled run or bitwise identity is
#: off the table.  Wall-clock-only knobs (worker counts, timeouts,
#: backoff delays) are deliberately absent.
_FINGERPRINT_FIELDS = (
    "n_init",
    "n_iter",
    "n_mc_samples",
    "candidate_pool",
    "refit_every",
    "invalid_penalty",
    "reference_margin",
    "correlated",
    "nonlinear",
    "cost_aware",
    "final_verification",
    "n_restarts",
    "max_opt_iter",
    "cache_predictions",
    "warm_start",
    "batch_size",
    "async_engine",
    "inflight_target",
    # Derived: the adaptive controller's upper bound (requested
    # ``eval_workers``) shapes async trajectories, so it is pinned for
    # async runs — but stays ``None`` for sync runs, where worker count
    # remains a wall-clock-only knob and resume across counts is fine.
    "inflight_cap",
    "seed",
    "retry_max_attempts",
    "degrade_on_failure",
    "punish_on_failure",
)

_REPORT_FIELDS = (
    "stage",
    "latency_cycles",
    "clock_ns",
    "lut",
    "ff",
    "dsp",
    "bram18",
    "power_w",
    "lut_util",
    "valid",
    "runtime_s",
)


class JournalError(ValueError):
    """The journal cannot seed a resume (missing/corrupt/mismatched)."""


# ----------------------------------------------------------------------
# exact-float JSON
# ----------------------------------------------------------------------


def _encode_float(value: float) -> float | str:
    if math.isnan(value):
        return "NaN"
    if value == math.inf:
        return "Infinity"
    if value == -math.inf:
        return "-Infinity"
    return float(value)


def _decode_float(value: Any) -> float:
    if isinstance(value, str):
        return float(value)  # "NaN" / "Infinity" / "-Infinity"
    return float(value)


# ----------------------------------------------------------------------
# record builders
# ----------------------------------------------------------------------


def settings_fingerprint(settings) -> dict[str, Any]:
    """Trajectory-shaping settings as a JSON-able dict."""
    out: dict[str, Any] = {}
    for name in _FINGERPRINT_FIELDS:
        value = getattr(settings, name)
        if isinstance(value, tuple):
            value = list(value)
        out[name] = value
    return out


def serialize_result(result: FlowResult) -> dict[str, Any]:
    reports = []
    for report in result.reports:
        row: dict[str, Any] = {}
        for name in _REPORT_FIELDS:
            value = getattr(report, name)
            if name == "stage":
                row[name] = int(value)
            elif name == "valid":
                row[name] = bool(value)
            else:
                row[name] = _encode_float(value)
        reports.append(row)
    return {
        "reports": reports,
        "total_runtime_s": _encode_float(result.total_runtime_s),
    }


def deserialize_result(payload: dict[str, Any]) -> FlowResult:
    reports = []
    for row in payload["reports"]:
        kwargs: dict[str, Any] = {}
        for name in _REPORT_FIELDS:
            value = row[name]
            if name == "stage":
                kwargs[name] = Fidelity(int(value))
            elif name == "valid":
                kwargs[name] = bool(value)
            else:
                kwargs[name] = _decode_float(value)
        reports.append(StageReport(**kwargs))
    return FlowResult(
        reports=tuple(reports),
        total_runtime_s=_decode_float(payload["total_runtime_s"]),
    )


def commit_record(
    *,
    phase: str,
    step: int,
    round_index: int,
    config_index: int,
    fidelity: Fidelity,
    requested_fidelity: Fidelity,
    acquisition: float,
    result: FlowResult,
    rng_state: dict,
    degraded: bool = False,
    failed: bool = False,
    attempts: int = 1,
    wasted_runtime_s: float = 0.0,
) -> dict[str, Any]:
    record = {
        "v": JOURNAL_SCHEMA_VERSION,
        "event": "commit",
        "phase": phase,
        "step": int(step),
        "round": int(round_index),
        "config_index": int(config_index),
        "fidelity": int(fidelity),
        "requested_fidelity": int(requested_fidelity),
        "acquisition": _encode_float(float(acquisition)),
        "degraded": bool(degraded),
        "failed": bool(failed),
        "attempts": int(attempts),
        "wasted_runtime_s": _encode_float(float(wasted_runtime_s)),
        "rng_state": rng_state,
    }
    record.update(serialize_result(result))
    return record


def commit_kwargs(record: dict[str, Any]) -> dict[str, Any]:
    """A journaled commit as keyword arguments for ``CorrelatedMFBO._commit``."""
    return {
        "index": int(record["config_index"]),
        "fidelity": Fidelity(int(record["fidelity"])),
        "result": deserialize_result(record),
        "acquisition": _decode_float(record["acquisition"]),
        "step": int(record["step"]),
        "requested": Fidelity(int(record["requested_fidelity"])),
        "degraded": bool(record["degraded"]),
        "failed": bool(record["failed"]),
        "attempts": int(record["attempts"]),
        "wasted_runtime_s": _decode_float(record["wasted_runtime_s"]),
    }


def propose_record(
    *,
    step: int,
    config_index: int,
    fidelity: Fidelity,
    acquisition: float,
    fantasy: Any,
    fantasy_levels: dict,
    eta_s: float,
    sim_s: float,
    target: int,
    pool_size: int,
    rng_state: dict,
) -> dict[str, Any]:
    """One async-pipeline proposal, journaled *before* submission.

    ``fantasy`` is the believer mean at the chosen fidelity and
    ``fantasy_levels`` the per-level believer means the evaluation will
    fill — journaled verbatim so replay can re-condition the stack on
    exactly the fantasies the live run saw, without re-deriving them
    from a stack mid-replay.  ``rng_state`` is captured *after* the
    selection consumed the generator.
    """
    return {
        "v": JOURNAL_SCHEMA_VERSION,
        "event": "propose",
        "phase": "loop",
        "step": int(step),
        "config_index": int(config_index),
        "fidelity": int(fidelity),
        "acquisition": _encode_float(float(acquisition)),
        "fantasy": [_encode_float(float(v)) for v in fantasy],
        "fantasy_levels": {
            str(int(level)): [_encode_float(float(v)) for v in values]
            for level, values in fantasy_levels.items()
        },
        "eta_s": _encode_float(float(eta_s)),
        "sim_s": _encode_float(float(sim_s)),
        "target": int(target),
        "pool_size": int(pool_size),
        "rng_state": rng_state,
    }


def propose_kwargs(record: dict[str, Any]) -> dict[str, Any]:
    """A journaled proposal, decoded (fantasies as plain float lists)."""
    return {
        "step": int(record["step"]),
        "config_index": int(record["config_index"]),
        "fidelity": Fidelity(int(record["fidelity"])),
        "acquisition": _decode_float(record["acquisition"]),
        "fantasy": [_decode_float(v) for v in record["fantasy"]],
        "fantasy_levels": {
            Fidelity(int(level)): [_decode_float(v) for v in values]
            for level, values in record["fantasy_levels"].items()
        },
        "eta_s": _decode_float(record["eta_s"]),
        "sim_s": _decode_float(record["sim_s"]),
        "target": int(record["target"]),
        "pool_size": int(record["pool_size"]),
        "rng_state": record["rng_state"],
    }


# ----------------------------------------------------------------------
# the journal file
# ----------------------------------------------------------------------


class RunJournal:
    """Append-only JSONL journal with per-line flush + fsync."""

    def __init__(self, path: str | Path, _handle: IO[str] | None = None):
        self.path = Path(path)
        if _handle is not None:
            self._handle = _handle
        else:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a")
        self.records_written = 0

    @classmethod
    def create(cls, path: str | Path, header: dict[str, Any]) -> "RunJournal":
        """Start a fresh journal (truncating any existing file)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        journal = cls(path, _handle=path.open("w"))
        journal.write(header)
        return journal

    @classmethod
    def continue_from(
        cls,
        path: str | Path,
        records: list[dict[str, Any]],
    ) -> "RunJournal":
        """Materialize ``records`` (header + kept prefix + resume marker)
        atomically, then open the file for appending.

        Used on resume: the kept prefix is rewritten verbatim into a
        temp file which replaces ``path``, so a crash during resume
        never leaves a half-rewritten journal behind.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                for record in records:
                    handle.write(_dumps(record) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        journal = cls(path)
        journal.records_written = len(records)
        return journal

    def write(self, record: dict[str, Any]) -> None:
        if self._handle is None:
            raise RuntimeError(f"journal {self.path} is closed")
        self._handle.write(_dumps(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.records_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _dumps(record: dict[str, Any]) -> str:
    # allow_nan=False: every float field must already be sentinel-encoded
    # — a raw NaN slipping through would otherwise produce non-JSON.
    return json.dumps(record, sort_keys=True, allow_nan=False)


def read_journal(path: str | Path) -> list[dict[str, Any]]:
    """All parseable records; a torn trailing line is silently dropped.

    A crash mid-``write`` can only corrupt the final line (each write is
    one flushed+fsync'd append); garbage *before* the last line means
    the file was damaged by something else, and is an error.
    """
    records: list[dict[str, Any]] = []
    path = Path(path)
    with path.open() as handle:
        lines = handle.readlines()
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break  # torn tail from a mid-write crash
            raise JournalError(
                f"{path}: corrupt journal line {i + 1} (not last — the "
                f"file was damaged outside a normal crash)"
            ) from None
    return records


def tail_complete(
    path: str | Path, offset: int = 0
) -> tuple[bytes, bool, int]:
    """``(data, reset, start)`` — new complete-line bytes past ``offset``.

    The streaming primitive behind mid-cell resume: a fleet worker
    tails its cell journal with this between heartbeats, shipping only
    whole lines (a half-written tail stays local until its fsync
    lands).  A file *smaller* than ``offset`` means
    :meth:`RunJournal.continue_from` rewrote it — the caller must
    restart the stream, signalled by ``reset=True`` and ``start == 0``.
    A missing file yields no data.  ``start + len(data)`` is the next
    offset once the chunk is acknowledged.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except OSError:
        return b"", False, offset
    start = offset
    reset = False
    if size < start:
        start = 0
        reset = True
    if size == start and not reset:
        return b"", False, start
    with path.open("rb") as handle:
        handle.seek(start)
        data = handle.read()
    cut = data.rfind(b"\n")
    data = data[: cut + 1] if cut >= 0 else b""
    return data, reset, start


# ----------------------------------------------------------------------
# replay planning
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ReplaySegment:
    """A replayable unit: the initial design, one loop round, or the
    verification epilogue."""

    phase: str  # "init" | "loop" | "verify"
    round_index: int  # -1 for init/verify
    step0: int  # refit-cadence key of a loop round
    records: tuple[dict, ...]


@dataclass
class ReplayPlan:
    """What to replay and where the live run picks up."""

    header: dict
    segments: list[ReplaySegment]
    kept_records: list[dict]  # header + kept commits, verbatim
    next_step: int
    next_round: int
    replayed: int
    dropped: int
    verify_attempted: frozenset[int]
    #: True when the journal shows the BO loop finished (verification
    #: commits exist or ``next_step`` reached ``n_iter``) — the resumed
    #: run must then skip the loop entirely: an early pool-dry break is
    #: not re-derivable once the round's evaluations have been folded
    #: in, so re-entering the loop could overshoot the original run.
    loop_done: bool = False


def _check_header(records: list[dict[str, Any]], settings) -> dict[str, Any]:
    """Validate version + settings fingerprint; return the header."""
    if not records or records[0].get("event") != "header":
        raise JournalError("journal has no header record")
    header = records[0]
    if header.get("v") != JOURNAL_SCHEMA_VERSION:
        raise JournalError(
            f"journal schema v{header.get('v')} != "
            f"v{JOURNAL_SCHEMA_VERSION} (cannot resume across versions)"
        )
    fingerprint = settings_fingerprint(settings)
    if header.get("fingerprint") != fingerprint:
        theirs = header.get("fingerprint") or {}
        diff = sorted(
            k
            for k in set(theirs) | set(fingerprint)
            if theirs.get(k) != fingerprint.get(k)
        )
        raise JournalError(
            "journal settings differ from the resuming run's "
            f"(bitwise resume impossible); mismatched: {', '.join(diff)}"
        )
    return header


def build_replay_plan(
    records: list[dict[str, Any]],
    settings,
    expected_init: int,
) -> ReplayPlan:
    """Partition journal records into bitwise-replayable segments.

    ``expected_init`` is the number of initial-design commits a
    complete initial phase writes (the optimizer knows the space size).
    An incomplete initial design is dropped entirely (the resume is
    then a fresh run); a trailing under-sized loop round is dropped and
    re-selected *unless* verification commits follow it (then the pool
    simply ran dry and the round is complete).
    """
    header = _check_header(records, settings)

    commits = [r for r in records if r.get("event") == "commit"]
    init = [r for r in commits if r["phase"] == "init"]
    loop = [r for r in commits if r["phase"] == "loop"]
    verify = [r for r in commits if r["phase"] == "verify"]
    total = len(commits)

    segments: list[ReplaySegment] = []
    kept: list[dict] = []
    if len(init) < expected_init:
        # Crash during the initial design: nothing replayable (the init
        # sampling is one RNG transaction; partial prefixes are not
        # restart points).
        return ReplayPlan(
            header=header,
            segments=[],
            kept_records=[header],
            next_step=0,
            next_round=0,
            replayed=0,
            dropped=total,
            verify_attempted=frozenset(),
        )
    segments.append(
        ReplaySegment(phase="init", round_index=-1, step0=-1,
                      records=tuple(init))
    )
    kept.extend(init)

    # Loop rounds must be contiguous in step and grouped by round.
    rounds: list[list[dict]] = []
    for record in loop:
        if rounds and record["round"] == rounds[-1][0]["round"]:
            rounds[-1].append(record)
        else:
            rounds.append([record])
    step = 0
    kept_rounds: list[list[dict]] = []
    dropped = 0
    for i, group in enumerate(rounds):
        steps = [r["step"] for r in group]
        if steps != list(range(step, step + len(group))):
            raise JournalError(
                f"journal loop steps are not contiguous at round "
                f"{group[0]['round']} (got {steps}, expected from {step})"
            )
        expected_q = min(settings.batch_size, settings.n_iter - step)
        is_last = i == len(rounds) - 1
        if len(group) < expected_q and is_last and not verify:
            # Torn final round (or a dry pool with no way to tell the
            # difference) — drop and re-select deterministically.
            dropped += len(group)
            break
        step += len(group)
        kept_rounds.append(group)
    for i, group in enumerate(kept_rounds):
        segments.append(
            ReplaySegment(
                phase="loop",
                round_index=i,
                step0=group[0]["step"],
                records=tuple(group),
            )
        )
        kept.extend(group)

    attempted: frozenset[int] = frozenset()
    if verify:
        segments.append(
            ReplaySegment(
                phase="verify", round_index=-1, step0=-1,
                records=tuple(verify),
            )
        )
        kept.extend(verify)
        attempted = frozenset(r["config_index"] for r in verify)

    return ReplayPlan(
        header=header,
        segments=segments,
        kept_records=[header] + kept,
        next_step=step,
        next_round=len(kept_rounds),
        replayed=len(kept),
        dropped=dropped,
        verify_attempted=attempted,
        loop_done=bool(verify) or step >= settings.n_iter,
    )


@dataclass
class AsyncReplayPlan:
    """What to replay for an async run and where the live loop picks up.

    Unlike the round-barrier plan there is no torn-round concept: every
    journal prefix is consistent.  ``pending`` holds the proposals with
    no matching commit (in step order) — the resumed loop resubmits
    them verbatim and continues draining on the journaled simulation
    clock.
    """

    header: dict
    init_records: tuple[dict, ...]
    #: Loop ``propose``/``commit`` records in journal (= live) order.
    loop_records: tuple[dict, ...]
    verify_records: tuple[dict, ...]
    kept_records: list[dict]  # header + kept records, verbatim
    pending: tuple[dict, ...]  # propose records lacking a commit
    committed: int
    next_step: int
    sim_s: float
    target: int
    replayed: int
    dropped: int
    verify_attempted: frozenset[int]
    loop_done: bool = False


def build_async_replay_plan(
    records: list[dict[str, Any]],
    settings,
    expected_init: int,
) -> AsyncReplayPlan:
    """Partition an async journal into a bitwise-replayable prefix.

    Validates that loop proposals carry contiguous steps from 0 in
    journal order and that every loop commit refers to an
    already-journaled proposal.  An incomplete initial design drops
    everything (fresh run), exactly like :func:`build_replay_plan`.
    """
    header = _check_header(records, settings)

    init = [
        r for r in records
        if r.get("event") == "commit" and r["phase"] == "init"
    ]
    loop = [
        r for r in records
        if r.get("event") in ("commit", "propose") and r["phase"] == "loop"
    ]
    verify = [
        r for r in records
        if r.get("event") == "commit" and r["phase"] == "verify"
    ]
    total = len(init) + len(loop) + len(verify)

    if len(init) < expected_init:
        # Crash during the initial design: nothing replayable (the init
        # sampling is one RNG transaction; partial prefixes are not
        # restart points).
        return AsyncReplayPlan(
            header=header,
            init_records=(),
            loop_records=(),
            verify_records=(),
            kept_records=[header],
            pending=(),
            committed=0,
            next_step=0,
            sim_s=0.0,
            target=1,
            replayed=0,
            dropped=total,
            verify_attempted=frozenset(),
        )

    proposed: dict[int, dict] = {}
    committed_steps: list[int] = []
    for record in loop:
        step = int(record["step"])
        if record["event"] == "propose":
            if step != len(proposed):
                raise JournalError(
                    f"journal propose steps are not contiguous (got "
                    f"{step}, expected {len(proposed)})"
                )
            proposed[step] = record
        else:
            if step not in proposed:
                raise JournalError(
                    f"journal commit at step {step} precedes its proposal"
                )
            if step in committed_steps:
                raise JournalError(
                    f"journal commits step {step} twice"
                )
            committed_steps.append(step)

    pending = tuple(
        proposed[step] for step in sorted(proposed)
        if step not in committed_steps
    )
    # The modeled clock after the replayed prefix: the ETA of the last
    # *committed* proposal (commits are journaled in modeled order).
    sim_s = (
        _decode_float(proposed[committed_steps[-1]]["eta_s"])
        if committed_steps else 0.0
    )
    # Adaptive-controller state is just the target, journaled on every
    # proposal (the gain signal is memoryless per decision).
    target = (
        int(proposed[len(proposed) - 1]["target"]) if proposed else 1
    )

    attempted: frozenset[int] = frozenset()
    if verify:
        attempted = frozenset(r["config_index"] for r in verify)

    n_committed = len(committed_steps)
    kept = [header] + init + loop + verify
    return AsyncReplayPlan(
        header=header,
        init_records=tuple(init),
        loop_records=tuple(loop),
        verify_records=tuple(verify),
        kept_records=kept,
        pending=pending,
        committed=n_committed,
        next_step=len(proposed),
        sim_s=sim_s,
        target=target,
        replayed=len(init) + len(loop) + len(verify),
        dropped=0,
        verify_attempted=attempted,
        loop_done=bool(verify) or n_committed >= settings.n_iter,
    )
