"""Multi-fidelity surrogate stacks (paper Sec. IV-A, Eq. (5) and Fig. 7).

Two constructions:

- :class:`NonlinearMultiFidelityStack` — the paper's model.  Fidelity 0
  is a correlated multi-objective GP on the directive features; fidelity
  ``i > 0`` is a correlated multi-objective GP whose inputs are the
  features *concatenated with the lower-fidelity posterior means of all
  objectives* (the orange arrows of Fig. 7):

      f_{i+1}(x) = z(f_i(x), x) + f_e(x)

  with both ``z`` and the error term absorbed into one GP over the
  augmented input.  Predictions propagate posterior means up the stack.

- :class:`LinearMultiFidelityStack` — the linear autoregressive model of
  Kennedy & O'Hagan used by FPL18 (the paper's [12]): per-objective
  independent GPs with ``f_{i+1}(x) = rho_i f_i(x) + delta_i(x)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gp import GaussianProcess
from repro.core.kernels import StationaryKernel
from repro.core.multitask import IndependentMultiObjectiveGP, MultiTaskGP

Dataset = tuple[np.ndarray, np.ndarray]


def _check_datasets(datasets: list[Dataset], n_tasks: int) -> None:
    if not datasets:
        raise ValueError("need at least one fidelity dataset")
    for level, (X, Y) in enumerate(datasets):
        X = np.atleast_2d(X)
        Y = np.atleast_2d(Y)
        if X.shape[0] != Y.shape[0]:
            raise ValueError(f"fidelity {level}: X and Y sample counts differ")
        if X.shape[0] < 2:
            raise ValueError(f"fidelity {level}: need at least 2 points")
        if Y.shape[1] != n_tasks:
            raise ValueError(
                f"fidelity {level}: expected {n_tasks} objectives, "
                f"got {Y.shape[1]}"
            )


@dataclass
class _AugScaler:
    """Standardizer for the lower-fidelity-mean input columns.

    Directive features are already in [0, 1]; appended objective means
    are in raw units (watts, microseconds) and must be rescaled so the
    ARD lengthscale bounds remain meaningful.
    """

    mean: np.ndarray
    std: np.ndarray

    @classmethod
    def fit(cls, aug: np.ndarray) -> "_AugScaler":
        mean = aug.mean(axis=0)
        std = aug.std(axis=0)
        std[std < 1e-12] = 1.0
        return cls(mean=mean, std=std)

    def transform(self, aug: np.ndarray) -> np.ndarray:
        return (aug - self.mean) / self.std


class NonlinearMultiFidelityStack:
    """Correlated multi-objective GPs chained non-linearly across
    fidelities (the paper's combined model, Fig. 7)."""

    def __init__(
        self,
        n_fidelities: int,
        n_tasks: int,
        kernel: StationaryKernel | None = None,
        n_restarts: int = 1,
        max_opt_iter: int = 80,
        rng: np.random.Generator | None = None,
        correlated: bool = True,
    ):
        if n_fidelities < 1:
            raise ValueError("need at least one fidelity")
        self.n_fidelities = n_fidelities
        self.n_tasks = n_tasks
        self.rng = rng or np.random.default_rng(0)
        model_cls = MultiTaskGP if correlated else IndependentMultiObjectiveGP
        self.models = [
            model_cls(
                n_tasks,
                kernel=kernel,
                n_restarts=n_restarts,
                max_opt_iter=max_opt_iter,
                rng=self.rng,
            )
            for _ in range(n_fidelities)
        ]
        self._scalers: list[_AugScaler | None] = [None] * n_fidelities

    def fit(
        self, datasets: list[Dataset], optimize: bool = True
    ) -> "NonlinearMultiFidelityStack":
        """Fit the stack bottom-up.

        ``datasets[i] = (X_i, Y_i)`` holds the points evaluated at
        fidelity ``i``; the paper's nesting ``X_impl ⊆ X_syn ⊆ X_hls``
        is not required by the model, only recommended by the flow.
        """
        if len(datasets) != self.n_fidelities:
            raise ValueError(
                f"expected {self.n_fidelities} datasets, got {len(datasets)}"
            )
        _check_datasets(datasets, self.n_tasks)
        for level, (X, Y) in enumerate(datasets):
            X = np.atleast_2d(np.asarray(X, dtype=float))
            Y = np.atleast_2d(np.asarray(Y, dtype=float))
            inputs = self._augment(level, X, fit_scaler=True)
            self.models[level].fit(Y=Y, X=inputs, optimize=optimize)
        return self

    def _augment(
        self, level: int, X: np.ndarray, fit_scaler: bool = False
    ) -> np.ndarray:
        """Input matrix of fidelity ``level``: features (+ lower means)."""
        if level == 0:
            return X
        lower_mean, _ = self.predict(level - 1, X)
        if fit_scaler:
            self._scalers[level] = _AugScaler.fit(lower_mean)
        scaler = self._scalers[level]
        if scaler is None:
            raise RuntimeError(f"fidelity {level} used before fitting")
        return np.hstack([X, scaler.transform(lower_mean)])

    def predict(
        self, level: int, Xs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior at fidelity ``level``: (means (m, M), covs (m, M, M)).

        Lower-fidelity information enters through recursively propagated
        posterior means (deterministic mean-field propagation).
        """
        if not 0 <= level < self.n_fidelities:
            raise ValueError(f"no fidelity {level}")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        inputs = self._augment(level, Xs)
        return self.models[level].predict(inputs)

    def predict_marginals(
        self, level: int, Xs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        mean, cov = self.predict(level, Xs)
        m = self.n_tasks
        return mean, np.maximum(cov[:, np.arange(m), np.arange(m)], 1e-12)

    def task_correlation(self, level: int) -> np.ndarray:
        """Learned objective-correlation matrix at one fidelity."""
        return self.models[level].task_correlation()


class LinearMultiFidelityStack:
    """Independent-objective, linear-autoregressive stack (FPL18)."""

    def __init__(
        self,
        n_fidelities: int,
        n_tasks: int,
        kernel: StationaryKernel | None = None,
        n_restarts: int = 1,
        max_opt_iter: int = 80,
        rng: np.random.Generator | None = None,
    ):
        if n_fidelities < 1:
            raise ValueError("need at least one fidelity")
        self.n_fidelities = n_fidelities
        self.n_tasks = n_tasks
        self.rng = rng or np.random.default_rng(0)
        self._kernel = kernel
        self._n_restarts = n_restarts
        self._max_opt_iter = max_opt_iter
        # models[level][task]; rhos[level][task] (level 0 has no rho).
        self.models: list[list[GaussianProcess]] = []
        self.rhos: list[np.ndarray] = []

    def fit(
        self, datasets: list[Dataset], optimize: bool = True
    ) -> "LinearMultiFidelityStack":
        if len(datasets) != self.n_fidelities:
            raise ValueError(
                f"expected {self.n_fidelities} datasets, got {len(datasets)}"
            )
        _check_datasets(datasets, self.n_tasks)
        reuse = bool(self.models) and not optimize
        if not reuse:
            self.models = [
                [self._new_gp() for _ in range(self.n_tasks)]
                for _ in range(self.n_fidelities)
            ]
        self.rhos = [np.ones(self.n_tasks)]
        X0, Y0 = datasets[0]
        for t in range(self.n_tasks):
            self.models[0][t].fit(
                np.atleast_2d(X0), np.asarray(Y0)[:, t], optimize=optimize
            )
        for level in range(1, self.n_fidelities):
            X, Y = datasets[level]
            X = np.atleast_2d(np.asarray(X, dtype=float))
            Y = np.atleast_2d(np.asarray(Y, dtype=float))
            lower_mean, _ = self.predict_marginals(level - 1, X)
            rho = np.ones(self.n_tasks)
            for t in range(self.n_tasks):
                # Least squares with intercept; the offset itself is
                # absorbed by the residual GP's constant mean.
                mu = lower_mean[:, t]
                A = np.column_stack([mu, np.ones_like(mu)])
                coef, *_ = np.linalg.lstsq(A, Y[:, t], rcond=None)
                if np.isfinite(coef[0]) and abs(coef[0]) > 1e-9:
                    rho[t] = float(coef[0])
                residual = Y[:, t] - rho[t] * mu
                self.models[level][t].fit(X, residual, optimize=optimize)
            self.rhos.append(rho)
        return self

    def _new_gp(self) -> GaussianProcess:
        return GaussianProcess(
            kernel=self._kernel,
            n_restarts=self._n_restarts,
            max_opt_iter=self._max_opt_iter,
            rng=self.rng,
        )

    def predict_marginals(
        self, level: int, Xs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-objective means and variances at a fidelity (m, M)."""
        if not self.models:
            raise RuntimeError("LinearMultiFidelityStack is not fitted")
        if not 0 <= level < self.n_fidelities:
            raise ValueError(f"no fidelity {level}")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        means = np.empty((Xs.shape[0], self.n_tasks))
        variances = np.empty_like(means)
        for t in range(self.n_tasks):
            mu, var = self.models[0][t].predict(Xs)
            means[:, t], variances[:, t] = mu, var
        for lv in range(1, level + 1):
            rho = self.rhos[lv]
            for t in range(self.n_tasks):
                mu_d, var_d = self.models[lv][t].predict(Xs)
                means[:, t] = rho[t] * means[:, t] + mu_d
                variances[:, t] = rho[t] ** 2 * variances[:, t] + var_d
        return means, np.maximum(variances, 1e-12)

    def predict(self, level: int, Xs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Diagonal-covariance variant of the stack posterior."""
        mean, var = self.predict_marginals(level, Xs)
        m = self.n_tasks
        cov = np.zeros((mean.shape[0], m, m))
        cov[:, np.arange(m), np.arange(m)] = var
        return mean, cov
