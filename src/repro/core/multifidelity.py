"""Multi-fidelity surrogate stacks (paper Sec. IV-A, Eq. (5) and Fig. 7).

Two constructions:

- :class:`NonlinearMultiFidelityStack` — the paper's model.  Fidelity 0
  is a correlated multi-objective GP on the directive features; fidelity
  ``i > 0`` is a correlated multi-objective GP whose inputs are the
  features *concatenated with the lower-fidelity posterior means of all
  objectives* (the orange arrows of Fig. 7):

      f_{i+1}(x) = z(f_i(x), x) + f_e(x)

  with both ``z`` and the error term absorbed into one GP over the
  augmented input.  Predictions propagate posterior means up the stack.

- :class:`LinearMultiFidelityStack` — the linear autoregressive model of
  Kennedy & O'Hagan used by FPL18 (the paper's [12]): per-objective
  independent GPs with ``f_{i+1}(x) = rho_i f_i(x) + delta_i(x)``.

Hot-path machinery shared by both stacks:

- **Per-step prediction cache.**  Scanning all fidelities over one
  candidate matrix re-derives every lower level once per higher level
  (1 + 2 + ... + L model predictions).  With
  :meth:`enable_prediction_cache` the stack memoizes one prediction per
  level, keyed by candidate-matrix *identity*, so the same sweep costs
  exactly L predictions — and, because a cache hit returns the very
  arrays the uncached call would recompute from identical inputs, the
  cached sweep is bit-for-bit identical to the uncached one.  The cache
  is invalidated by :meth:`fit` and by :meth:`begin_step`.
- **Warm-started refits.**  ``fit(..., warm_start=True)`` starts each
  level's hyperparameter optimization from its previous optimum with no
  random restarts (see :meth:`MultiTaskGP.fit`).
- **Refit skipping.**  When a level's training set is unchanged *and*
  no lower level was refit (so its augmented inputs are unchanged too),
  ``fit`` skips the level entirely instead of re-factorizing — legal
  only under ``warm_start`` or ``optimize=False``, where re-fitting
  identical data from the current optimum is a no-op by construction.
  ``last_refit_levels`` records what was actually refit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.gp import GaussianProcess
from repro.core.kernels import StationaryKernel
from repro.core.multitask import IndependentMultiObjectiveGP, MultiTaskGP

Dataset = tuple[np.ndarray, np.ndarray]


def _check_datasets(datasets: list[Dataset], n_tasks: int) -> None:
    if not datasets:
        raise ValueError("need at least one fidelity dataset")
    for level, (X, Y) in enumerate(datasets):
        X = np.atleast_2d(X)
        Y = np.atleast_2d(Y)
        if X.shape[0] != Y.shape[0]:
            raise ValueError(f"fidelity {level}: X and Y sample counts differ")
        if X.shape[0] < 2:
            raise ValueError(f"fidelity {level}: need at least 2 points")
        if Y.shape[1] != n_tasks:
            raise ValueError(
                f"fidelity {level}: expected {n_tasks} objectives, "
                f"got {Y.shape[1]}"
            )


@dataclass
class _AugScaler:
    """Standardizer for the lower-fidelity-mean input columns.

    Directive features are already in [0, 1]; appended objective means
    are in raw units (watts, microseconds) and must be rescaled so the
    ARD lengthscale bounds remain meaningful.
    """

    mean: np.ndarray
    std: np.ndarray

    @classmethod
    def fit(cls, aug: np.ndarray) -> "_AugScaler":
        mean = aug.mean(axis=0)
        std = aug.std(axis=0)
        std[std < 1e-12] = 1.0
        return cls(mean=mean, std=std)

    def transform(self, aug: np.ndarray) -> np.ndarray:
        return (aug - self.mean) / self.std


class _PredictionCache:
    """One memoized prediction per fidelity level, keyed by matrix identity.

    Identity (``is``) keying sidesteps both hashing cost and false
    positives from recycled ids: the cache holds a reference to the key
    array, so the id cannot be reused while the entry lives.  Callers
    must not mutate a matrix they pass in while the cache is active.
    """

    def __init__(self) -> None:
        self._entries: dict[int, tuple[np.ndarray, tuple]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, level: int, Xs: np.ndarray) -> tuple | None:
        entry = self._entries.get(level)
        if entry is not None and entry[0] is Xs:
            self.hits += 1
            return entry[1]
        return None

    def put(self, level: int, Xs: np.ndarray, value: tuple) -> None:
        self.misses += 1
        self._entries[level] = (Xs, value)

    def clear(self) -> None:
        self._entries.clear()


class _StackCachingMixin:
    """Prediction-cache toggle and data-fingerprint helpers."""

    def _init_caching(self, n_fidelities: int) -> None:
        self._cache_enabled = False
        self._cache = _PredictionCache()
        self._fit_data: list[Dataset | None] = [None] * n_fidelities
        self.last_refit_levels: list[int] = []

    def enable_prediction_cache(self, enabled: bool = True) -> None:
        self._cache_enabled = enabled
        if not enabled:
            self._cache.clear()

    def begin_step(self) -> None:
        """Invalidate per-step memos (call once per optimization step)."""
        self._cache.clear()

    @property
    def cache_hits(self) -> int:
        return self._cache.hits

    @property
    def cache_misses(self) -> int:
        return self._cache.misses

    def _data_unchanged(self, level: int, X: np.ndarray, Y: np.ndarray) -> bool:
        prev = self._fit_data[level]
        return (
            prev is not None
            and prev[0].shape == X.shape
            and prev[1].shape == Y.shape
            and np.array_equal(prev[0], X)
            and np.array_equal(prev[1], Y)
        )


class NonlinearMultiFidelityStack(_StackCachingMixin):
    """Correlated multi-objective GPs chained non-linearly across
    fidelities (the paper's combined model, Fig. 7)."""

    def __init__(
        self,
        n_fidelities: int,
        n_tasks: int,
        kernel: StationaryKernel | None = None,
        n_restarts: int = 1,
        max_opt_iter: int = 80,
        rng: np.random.Generator | None = None,
        correlated: bool = True,
        cache_predictions: bool = False,
        incremental: bool = True,
    ):
        if n_fidelities < 1:
            raise ValueError("need at least one fidelity")
        self.n_fidelities = n_fidelities
        self.n_tasks = n_tasks
        self.rng = rng or np.random.default_rng(0)
        model_cls = MultiTaskGP if correlated else IndependentMultiObjectiveGP
        self.models = [
            model_cls(
                n_tasks,
                kernel=kernel,
                n_restarts=n_restarts,
                max_opt_iter=max_opt_iter,
                rng=self.rng,
                incremental=incremental,
            )
            for _ in range(n_fidelities)
        ]
        self._scalers: list[_AugScaler | None] = [None] * n_fidelities
        self._init_caching(n_fidelities)
        self.enable_prediction_cache(cache_predictions)

    def fit(
        self,
        datasets: list[Dataset],
        optimize: bool = True,
        warm_start: bool = False,
        ephemeral: bool = False,
    ) -> "NonlinearMultiFidelityStack":
        """Fit the stack bottom-up.

        ``datasets[i] = (X_i, Y_i)`` holds the points evaluated at
        fidelity ``i``; the paper's nesting ``X_impl ⊆ X_syn ⊆ X_hls``
        is not required by the model, only recommended by the flow.

        ``ephemeral=True`` marks a fantasy conditioning (see
        :meth:`MultiTaskGP.fit`): the next non-ephemeral fixed-parameter
        fit extends each level's factor from its last durable state.
        """
        if len(datasets) != self.n_fidelities:
            raise ValueError(
                f"expected {self.n_fidelities} datasets, got {len(datasets)}"
            )
        _check_datasets(datasets, self.n_tasks)
        self._cache.clear()
        self.last_refit_levels = []
        skippable = warm_start or not optimize
        lower_refit = False
        for level, (X, Y) in enumerate(datasets):
            X = np.atleast_2d(np.asarray(X, dtype=float))
            Y = np.atleast_2d(np.asarray(Y, dtype=float))
            if (
                skippable
                and not lower_refit
                and self.models[level].is_fitted
                and self._data_unchanged(level, X, Y)
            ):
                continue
            inputs = self._augment(level, X, fit_scaler=True)
            self.models[level].fit(
                Y=Y, X=inputs, optimize=optimize, warm_start=warm_start,
                ephemeral=ephemeral,
            )
            self._fit_data[level] = (X, Y)
            self.last_refit_levels.append(level)
            lower_refit = True
        self._cache.clear()
        return self

    def _augment(
        self, level: int, X: np.ndarray, fit_scaler: bool = False
    ) -> np.ndarray:
        """Input matrix of fidelity ``level``: features (+ lower means)."""
        if level == 0:
            return X
        lower_mean, _ = self.predict(level - 1, X)
        if fit_scaler:
            self._scalers[level] = _AugScaler.fit(lower_mean)
        scaler = self._scalers[level]
        if scaler is None:
            raise RuntimeError(f"fidelity {level} used before fitting")
        return np.hstack([X, scaler.transform(lower_mean)])

    def predict(
        self, level: int, Xs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior at fidelity ``level``: (means (m, M), covs (m, M, M)).

        Lower-fidelity information enters through recursively propagated
        posterior means (deterministic mean-field propagation).  With the
        prediction cache enabled, each level is computed at most once per
        step for a given candidate matrix (identity-keyed, bitwise-exact
        memoization).
        """
        if not 0 <= level < self.n_fidelities:
            raise ValueError(f"no fidelity {level}")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        if self._cache_enabled:
            cached = self._cache.get(level, Xs)
            if cached is not None:
                return cached
        inputs = self._augment(level, Xs)
        out = self.models[level].predict(inputs)
        if self._cache_enabled:
            self._cache.put(level, Xs, out)
        return out

    def predict_levels(
        self, levels: list[int], Xs: np.ndarray
    ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Posterior at several fidelities in one bottom-up sweep.

        Each level of the chain is evaluated exactly once regardless of
        how many requested levels sit above it, and each requested
        level's result is bitwise identical to :meth:`predict` on it.
        With the prediction cache enabled the sweep routes through
        :meth:`predict` (the cache already collapses shared lower
        levels); with it disabled the lower means are threaded forward
        explicitly.
        """
        wanted = sorted(set(int(lv) for lv in levels))
        if not wanted:
            return {}
        if wanted[0] < 0 or wanted[-1] >= self.n_fidelities:
            bad = wanted[0] if wanted[0] < 0 else wanted[-1]
            raise ValueError(f"no fidelity {bad}")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        if self._cache_enabled:
            return {lv: self.predict(lv, Xs) for lv in wanted}
        out: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        lower_mean: np.ndarray | None = None
        for lv in range(wanted[-1] + 1):
            if lv == 0:
                inputs = Xs
            else:
                scaler = self._scalers[lv]
                if scaler is None:
                    raise RuntimeError(f"fidelity {lv} used before fitting")
                inputs = np.hstack([Xs, scaler.transform(lower_mean)])
            mean, cov = self.models[lv].predict(inputs)
            lower_mean = mean
            if lv in wanted:
                out[lv] = (mean, cov)
        return out

    def predict_marginals(
        self, level: int, Xs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        mean, cov = self.predict(level, Xs)
        m = self.n_tasks
        return mean, np.maximum(cov[:, np.arange(m), np.arange(m)], 1e-12)

    def task_correlation(self, level: int) -> np.ndarray:
        """Learned objective-correlation matrix at one fidelity."""
        return self.models[level].task_correlation()


class LinearMultiFidelityStack(_StackCachingMixin):
    """Independent-objective, linear-autoregressive stack (FPL18)."""

    def __init__(
        self,
        n_fidelities: int,
        n_tasks: int,
        kernel: StationaryKernel | None = None,
        n_restarts: int = 1,
        max_opt_iter: int = 80,
        rng: np.random.Generator | None = None,
        cache_predictions: bool = False,
        incremental: bool = True,
    ):
        if n_fidelities < 1:
            raise ValueError("need at least one fidelity")
        self.n_fidelities = n_fidelities
        self.n_tasks = n_tasks
        self.rng = rng or np.random.default_rng(0)
        self._kernel = kernel
        self._n_restarts = n_restarts
        self._max_opt_iter = max_opt_iter
        self._incremental = incremental
        # models[level][task]; rhos[level][task] (level 0 has no rho).
        self.models: list[list[GaussianProcess]] = []
        self.rhos: list[np.ndarray] = []
        self._init_caching(n_fidelities)
        self.enable_prediction_cache(cache_predictions)

    def fit(
        self,
        datasets: list[Dataset],
        optimize: bool = True,
        warm_start: bool = False,
        ephemeral: bool = False,
    ) -> "LinearMultiFidelityStack":
        if len(datasets) != self.n_fidelities:
            raise ValueError(
                f"expected {self.n_fidelities} datasets, got {len(datasets)}"
            )
        _check_datasets(datasets, self.n_tasks)
        self._cache.clear()
        self.last_refit_levels = []
        reuse = bool(self.models) and (warm_start or not optimize)
        if not reuse:
            self.models = [
                [self._new_gp() for _ in range(self.n_tasks)]
                for _ in range(self.n_fidelities)
            ]
            self.rhos = []
        skippable = reuse and len(self.rhos) == self.n_fidelities
        old_rhos, self.rhos = self.rhos, [np.ones(self.n_tasks)]
        lower_refit = False
        X0, Y0 = datasets[0]
        X0 = np.atleast_2d(np.asarray(X0, dtype=float))
        Y0 = np.atleast_2d(np.asarray(Y0, dtype=float))
        if skippable and self._data_unchanged(0, X0, Y0):
            pass
        else:
            for t in range(self.n_tasks):
                self.models[0][t].fit(
                    X0, Y0[:, t], optimize=optimize, warm_start=warm_start,
                    ephemeral=ephemeral,
                )
            self._fit_data[0] = (X0, Y0)
            self.last_refit_levels.append(0)
            lower_refit = True
        for level in range(1, self.n_fidelities):
            X, Y = datasets[level]
            X = np.atleast_2d(np.asarray(X, dtype=float))
            Y = np.atleast_2d(np.asarray(Y, dtype=float))
            if (
                skippable
                and not lower_refit
                and self._data_unchanged(level, X, Y)
            ):
                self.rhos.append(old_rhos[level])
                continue
            lower_mean, _ = self.predict_marginals(level - 1, X)
            rho = np.ones(self.n_tasks)
            for t in range(self.n_tasks):
                # Least squares with intercept; the offset itself is
                # absorbed by the residual GP's constant mean.
                mu = lower_mean[:, t]
                A = np.column_stack([mu, np.ones_like(mu)])
                coef, *_ = np.linalg.lstsq(A, Y[:, t], rcond=None)
                if np.isfinite(coef[0]) and abs(coef[0]) > 1e-9:
                    rho[t] = float(coef[0])
                residual = Y[:, t] - rho[t] * mu
                self.models[level][t].fit(
                    X, residual, optimize=optimize, warm_start=warm_start,
                    ephemeral=ephemeral,
                )
            self.rhos.append(rho)
            self._fit_data[level] = (X, Y)
            self.last_refit_levels.append(level)
            lower_refit = True
        self._cache.clear()
        return self

    def _new_gp(self) -> GaussianProcess:
        return GaussianProcess(
            kernel=self._kernel,
            n_restarts=self._n_restarts,
            max_opt_iter=self._max_opt_iter,
            rng=self.rng,
            incremental=self._incremental,
        )

    def predict_marginals(
        self, level: int, Xs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-objective means and variances at a fidelity (m, M)."""
        if not self.models:
            raise RuntimeError("LinearMultiFidelityStack is not fitted")
        if not 0 <= level < self.n_fidelities:
            raise ValueError(f"no fidelity {level}")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        means, variances, start = None, None, 0
        if self._cache_enabled:
            cached = self._cache.get(level, Xs)
            if cached is not None:
                means, variances = cached
                return means, np.maximum(variances, 1e-12)
            # Resume from the deepest cached lower level; the cache
            # stores the *pre-floor* running values, so resuming is
            # bitwise identical to recomputing from level 0.
            for lv in range(level - 1, -1, -1):
                cached = self._cache.get(lv, Xs)
                if cached is not None:
                    means = cached[0].copy()
                    variances = cached[1].copy()
                    start = lv + 1
                    break
        if means is None:
            means = np.empty((Xs.shape[0], self.n_tasks))
            variances = np.empty_like(means)
            for t in range(self.n_tasks):
                mu, var = self.models[0][t].predict(Xs)
                means[:, t], variances[:, t] = mu, var
            start = 1
            if self._cache_enabled and level > 0:
                self._cache.put(0, Xs, (means.copy(), variances.copy()))
        for lv in range(start, level + 1):
            rho = self.rhos[lv]
            for t in range(self.n_tasks):
                mu_d, var_d = self.models[lv][t].predict(Xs)
                means[:, t] = rho[t] * means[:, t] + mu_d
                variances[:, t] = rho[t] ** 2 * variances[:, t] + var_d
            if self._cache_enabled and lv < level:
                self._cache.put(lv, Xs, (means.copy(), variances.copy()))
        if self._cache_enabled:
            self._cache.put(level, Xs, (means, variances))
        return means, np.maximum(variances, 1e-12)

    def predict(self, level: int, Xs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Diagonal-covariance variant of the stack posterior."""
        mean, var = self.predict_marginals(level, Xs)
        m = self.n_tasks
        cov = np.zeros((mean.shape[0], m, m))
        cov[:, np.arange(m), np.arange(m)] = var
        return mean, cov

    def predict_levels(
        self, levels: list[int], Xs: np.ndarray
    ) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Posterior at several fidelities in one bottom-up sweep.

        Same contract as
        :meth:`NonlinearMultiFidelityStack.predict_levels`: each chain
        level is evaluated once, and every requested level's result is
        bitwise identical to :meth:`predict` on it.
        """
        if not self.models:
            raise RuntimeError("LinearMultiFidelityStack is not fitted")
        wanted = sorted(set(int(lv) for lv in levels))
        if not wanted:
            return {}
        if wanted[0] < 0 or wanted[-1] >= self.n_fidelities:
            bad = wanted[0] if wanted[0] < 0 else wanted[-1]
            raise ValueError(f"no fidelity {bad}")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        if self._cache_enabled:
            return {lv: self.predict(lv, Xs) for lv in wanted}
        m = self.n_tasks
        means = np.empty((Xs.shape[0], m))
        variances = np.empty_like(means)
        for t in range(m):
            means[:, t], variances[:, t] = self.models[0][t].predict(Xs)
        out: dict[int, tuple[np.ndarray, np.ndarray]] = {}

        def emit(lv: int) -> None:
            cov = np.zeros((means.shape[0], m, m))
            cov[:, np.arange(m), np.arange(m)] = np.maximum(variances, 1e-12)
            out[lv] = (means.copy(), cov)

        if 0 in wanted:
            emit(0)
        for lv in range(1, wanted[-1] + 1):
            rho = self.rhos[lv]
            for t in range(m):
                mu_d, var_d = self.models[lv][t].predict(Xs)
                means[:, t] = rho[t] * means[:, t] + mu_d
                variances[:, t] = rho[t] ** 2 * variances[:, t] + var_d
            if lv in wanted:
                emit(lv)
        return out
