"""The paper's contribution: correlated multi-objective multi-fidelity BO.

Public surface:

- GP stack: :class:`GaussianProcess`, :class:`MultiTaskGP`,
  :class:`NonlinearMultiFidelityStack`, :class:`LinearMultiFidelityStack`
- Pareto machinery: :func:`pareto_front`, :func:`hypervolume`, ...
- Acquisition: :func:`expected_improvement`, :func:`eipv_mc`,
  :func:`ehvi_2d_independent`, :func:`penalized_eipv`
- The optimizer: :class:`CorrelatedMFBO` + :class:`MFBOSettings`
"""

from repro.core.acquisition import (
    ehvi_2d_independent,
    eipv_mc,
    expected_improvement,
    nondominated_cells_2d,
    penalized_eipv,
)
from repro.core.gp import GaussianProcess
from repro.core.kernels import RBF, Matern52, StationaryKernel
from repro.core.multifidelity import (
    LinearMultiFidelityStack,
    NonlinearMultiFidelityStack,
)
from repro.core.multitask import IndependentMultiObjectiveGP, MultiTaskGP
from repro.core.optimizer import CorrelatedMFBO, MFBOSettings
from repro.core.pareto import (
    default_reference,
    dominated_boxes,
    dominates,
    hvi,
    hvi_batch,
    hypervolume,
    pareto_front,
    pareto_mask,
)
from repro.core.result import OptimizationResult, StepRecord

__all__ = [
    "CorrelatedMFBO",
    "GaussianProcess",
    "IndependentMultiObjectiveGP",
    "LinearMultiFidelityStack",
    "MFBOSettings",
    "Matern52",
    "MultiTaskGP",
    "NonlinearMultiFidelityStack",
    "OptimizationResult",
    "RBF",
    "StationaryKernel",
    "StepRecord",
    "default_reference",
    "dominated_boxes",
    "dominates",
    "ehvi_2d_independent",
    "eipv_mc",
    "expected_improvement",
    "hvi",
    "hvi_batch",
    "hypervolume",
    "nondominated_cells_2d",
    "pareto_front",
    "pareto_mask",
    "penalized_eipv",
]
