"""Counted dense Cholesky primitives for the GP stack.

Two jobs in one module:

- **Block Cholesky extension** (:func:`chol_extend`).  For a grown
  covariance matrix

      K_new = [[K_old, B],
               [B^T,   D]]

  with ``K_old = L_old L_old^T`` already factorized, the factor of
  ``K_new`` is

      L_new = [[L_old, 0  ],
               [C^T,   L_k]],   C = L_old^{-1} B,
                                L_k L_k^T = D - C^T C  (Schur complement)

  costing ``n^2 k + n k^2 + k^3/3`` flops instead of the full
  ``(n+k)^3 / 3`` refactorization — the identity behind incremental
  ``fit(optimize=False)`` conditioning in :mod:`repro.core.gp` and
  :mod:`repro.core.multitask`.  When the Schur complement is not
  numerically positive definite (accumulated roundoff after many
  extensions), :class:`numpy.linalg.LinAlgError` propagates and callers
  fall back to a full refactorization.

- **A deterministic work proxy** (:data:`FLOPS`).  Every factorization
  and extension routed through this module increments a global flop
  counter.  Counted flops depend only on matrix sizes — never on core
  count, machine load or clock resolution — so the perf gates in
  ``benchmarks/*.py`` can arm on them even on a 1-CPU CI runner where
  wall-clock speedup assertions are meaningless.

The wrapped factorization is plain :func:`scipy.linalg.cholesky`, so
routing through :func:`chol_factor` is bitwise neutral.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

import numpy as np
from scipy.linalg import cho_solve, cholesky, solve_triangular

__all__ = [
    "FLOPS",
    "FlopCounter",
    "chol_factor",
    "chol_extend",
    "counted_cho_solve",
    "counted_solve_triangular",
    "factor_flops",
    "extend_flops",
    "metered",
]


def factor_flops(n: int) -> int:
    """Flops of a full ``n x n`` Cholesky factorization (``n^3 / 3``)."""
    return n * n * n // 3


def extend_flops(n_old: int, k: int) -> int:
    """Flops of extending an ``n_old``-row factor by ``k`` rows."""
    return n_old * n_old * k + n_old * k * k + k * k * k // 3


class FlopCounter:
    """Thread-safe counters for factorization/solve work.

    One process-global instance (:data:`FLOPS`) is shared by every GP;
    callers snapshot before/after a region and difference the dicts,
    mirroring :meth:`repro.obs.timing.Metrics.snapshot`.
    """

    _KEYS = (
        "factor_flops",
        "extend_flops",
        "solve_flops",
        "factorizations",
        "extensions",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = {k: 0 for k in self._KEYS}

    def add(self, key: str, flops: int) -> None:
        with self._lock:
            self._counts[key] += int(flops)

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    @staticmethod
    def delta(before: dict[str, int], after: dict[str, int]) -> dict[str, int]:
        return {k: after.get(k, 0) - before.get(k, 0) for k in after}

    def reset(self) -> None:
        with self._lock:
            for k in self._counts:
                self._counts[k] = 0


#: Process-global work counter (the benchmarks' deterministic proxy).
FLOPS = FlopCounter()


def chol_factor(K: np.ndarray) -> np.ndarray:
    """Counted lower-Cholesky factorization (bitwise = scipy's)."""
    n = K.shape[0]
    FLOPS.add("factor_flops", factor_flops(n))
    FLOPS.add("factorizations", 1)
    return cholesky(K, lower=True)


def chol_extend(L_old: np.ndarray, B: np.ndarray, D: np.ndarray) -> np.ndarray:
    """Extend a lower-Cholesky factor by the new rows' blocks.

    ``B`` is the ``(n_old, k)`` cross-covariance between old and new
    rows, ``D`` the ``(k, k)`` covariance of the new rows (noise and
    jitter already on its diagonal).  Raises
    :class:`numpy.linalg.LinAlgError` when the Schur complement is not
    positive definite — the caller's cue to refactorize from scratch.
    """
    n_old = L_old.shape[0]
    k = D.shape[0]
    if B.shape != (n_old, k):
        raise ValueError(
            f"cross block has shape {B.shape}, expected {(n_old, k)}"
        )
    C = solve_triangular(L_old, B, lower=True)  # (n_old, k)
    S = D - C.T @ C
    # numpy's cholesky raises LinAlgError on indefinite input; scipy's
    # raises its own subclass of it.  Either propagates to the caller.
    L_k = cholesky(S, lower=True)
    FLOPS.add("extend_flops", extend_flops(n_old, k))
    FLOPS.add("extensions", 1)
    n = n_old + k
    L = np.zeros((n, n))
    L[:n_old, :n_old] = L_old
    L[n_old:, :n_old] = C.T
    L[n_old:, n_old:] = L_k
    return L


@contextmanager
def metered(metrics, prefix: str):
    """Credit the block's flop deltas to ``metrics`` as ``{prefix}_*``.

    ``metrics`` is any object with ``incr(name, by)`` (in practice
    :class:`repro.obs.timing.Metrics`).  Zero deltas are skipped, so
    unused buckets never appear in snapshots.
    """
    before = FLOPS.snapshot()
    try:
        yield
    finally:
        for key, value in FlopCounter.delta(before, FLOPS.snapshot()).items():
            if value:
                metrics.incr(f"{prefix}_{key}", value)


def counted_cho_solve(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Counted ``(L L^T)^{-1} b`` (bitwise = scipy's ``cho_solve``)."""
    n = L.shape[0]
    nrhs = 1 if b.ndim == 1 else b.shape[1]
    FLOPS.add("solve_flops", 2 * n * n * nrhs)
    return cho_solve((L, True), b)


def counted_solve_triangular(L: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Counted ``L^{-1} B`` forward solve (bitwise = scipy's).

    One triangular solve is ``n^2`` flops per right-hand side.  Routes
    the GP *predict* path's solves through the global counter so the
    acquisition sweep's linear-algebra work shows up in the same
    ``fit_``/``commit_``/``fantasy_`` buckets :func:`metered` credits.
    """
    n = L.shape[0]
    nrhs = 1 if B.ndim == 1 else B.shape[1]
    FLOPS.add("solve_flops", n * n * nrhs)
    return solve_triangular(L, B, lower=True)
