"""Deterministic multi-start dispatch for L-BFGS-B hyperparameter fits.

``GaussianProcess`` and ``MultiTaskGP`` maximize the log marginal
likelihood from several start points (the incumbent plus jittered
restarts).  The descents are independent, so when ``n_restarts > 1``
they can run in a process pool — this module fans them out while
keeping the selected optimum **identical** to the sequential loop:

- the start list is built by the caller (same RNG draws either way);
- every descent runs the same ``scipy.optimize.minimize`` call;
- the winner is picked by replaying the sequential reduction — a
  strict ``fun < best`` scan *in start order* — over the gathered
  results, so ties resolve exactly as they would sequentially.

Parallelism is opt-in: pass ``workers`` explicitly or set the
``REPRO_RESTART_WORKERS`` environment variable (default 1 keeps the
single-process behavior; the BO refit pattern mostly runs warm-started
single descents where a pool would only add overhead).  If the pool
cannot be used (unpicklable objective, broken worker), the dispatch
silently falls back to the sequential loop — results are identical
either way.

Pool reuse: a fit-heavy run calls :func:`minimize_multistart` hundreds
of times, and building a fresh ``ProcessPoolExecutor`` per call costs
more than the descents it runs.  Pools are therefore created lazily,
one per requested worker count, and reused across calls; they are torn
down at interpreter exit (``atexit``) or explicitly via
:func:`shutdown_restart_pools`.  A pool that raises is discarded (its
replacement is rebuilt on the next call) and the affected dispatch
falls back to the sequential loop.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

import numpy as np
from scipy.optimize import minimize

#: Environment variable holding the default pool size (unset/1 = off).
RESTART_WORKERS_ENV = "REPRO_RESTART_WORKERS"


def resolve_workers(workers: int | None) -> int:
    """Explicit argument, else ``$REPRO_RESTART_WORKERS``, else 1."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(RESTART_WORKERS_ENV, "").strip()
    if not env:
        return 1
    try:
        return max(1, int(env))
    except ValueError:
        return 1


def _descend(
    fun: Callable[..., tuple[float, np.ndarray]],
    start: np.ndarray,
    args: tuple,
    bounds: Sequence[tuple[float, float]],
    maxiter: int,
) -> tuple[float, np.ndarray]:
    """One L-BFGS-B descent (module-level: picklable worker body)."""
    result = minimize(
        fun,
        start,
        args=args,
        jac=True,
        method="L-BFGS-B",
        bounds=list(bounds),
        options={"maxiter": maxiter},
    )
    return float(result.fun), np.asarray(result.x, dtype=float)


def minimize_multistart(
    fun: Callable[..., tuple[float, np.ndarray]],
    starts: Sequence[np.ndarray],
    args: tuple,
    bounds: Sequence[tuple[float, float]],
    maxiter: int,
    workers: int | None = None,
    fallback: np.ndarray | None = None,
) -> np.ndarray:
    """Best-of-``starts`` minimizer, optionally fanning descents out.

    Returns the ``x`` of the in-order first descent achieving the
    strictly smallest objective; ``fallback`` (default ``starts[0]``)
    if every descent reports a non-finite/huge objective — matching the
    sequential loops this replaces bit for bit.
    """
    starts = [np.asarray(s, dtype=float) for s in starts]
    if not starts:
        raise ValueError("need at least one start point")
    if fallback is None:
        fallback = starts[0]
    workers = resolve_workers(workers)

    results: list[tuple[float, np.ndarray]] | None = None
    if workers > 1 and len(starts) > 1:
        results = _descend_parallel(
            fun, starts, args, bounds, maxiter, workers
        )
    if results is None:  # sequential mode, or pool fallback
        results = [
            _descend(fun, start, args, bounds, maxiter) for start in starts
        ]

    best_x = np.asarray(fallback, dtype=float)
    best_val = math.inf
    for val, x in results:  # replay of the sequential selection scan
        if val < best_val:
            best_val, best_x = val, x
    return best_x


#: Lazily-created shared pools, one per requested worker count.
_SHARED_POOLS: dict[int, ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()
_ATEXIT_REGISTERED = False


def _shared_pool(workers: int) -> ProcessPoolExecutor:
    """The reusable pool for ``workers``, created on first use."""
    global _ATEXIT_REGISTERED
    with _POOLS_LOCK:
        pool = _SHARED_POOLS.get(workers)
        if pool is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=ctx)
            _SHARED_POOLS[workers] = pool
            if not _ATEXIT_REGISTERED:
                atexit.register(shutdown_restart_pools)
                _ATEXIT_REGISTERED = True
        return pool


def _discard_pool(workers: int) -> None:
    """Drop (and shut down) a pool that raised; rebuilt on next use."""
    with _POOLS_LOCK:
        pool = _SHARED_POOLS.pop(workers, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_restart_pools() -> None:
    """Shut down every shared restart pool (idempotent; atexit hook)."""
    with _POOLS_LOCK:
        pools = list(_SHARED_POOLS.values())
        _SHARED_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


def _descend_parallel(
    fun: Callable[..., tuple[float, np.ndarray]],
    starts: list[np.ndarray],
    args: tuple,
    bounds: Sequence[tuple[float, float]],
    maxiter: int,
    workers: int,
) -> list[tuple[float, np.ndarray]] | None:
    """All descents through the shared pool, results in start order.

    Returns ``None`` when the pool cannot run the objective (e.g. an
    unpicklable closure) so the caller falls back to sequential; the
    pool itself is discarded on failure, so a transient breakage never
    wedges later calls.
    """
    try:
        pool = _shared_pool(workers)
        futures = [
            pool.submit(_descend, fun, start, args, bounds, maxiter)
            for start in starts
        ]
        return [future.result() for future in futures]
    except Exception:
        _discard_pool(workers)
        return None


__all__ = [
    "RESTART_WORKERS_ENV",
    "minimize_multistart",
    "resolve_workers",
    "shutdown_restart_pools",
]
