"""Fleet wire format: pickled payloads behind a pinned schema guard.

Broker, workers and schedulers exchange :class:`repro.experiments.
parallel.Job` / ``JobOutcome`` and :class:`repro.core.batch.engine.
EvalJob` / ``EvalOutcome`` objects as pickles (the Job/JobOutcome layer
is pickle-clean by construction — the process-pool engine has shipped
them across processes since PR 2).  Pickle is fine between our own
trusted processes on a private network, but it is *silently* wrong
under version skew: an old worker can unpickle a new ``Job`` whose
semantics changed and corrupt a sweep without a single exception.

The guard: :data:`PINNED_FIELDS` pins the dataclass field sets of every
type that crosses the wire, and :func:`wire_fingerprint` hashes the pin
together with :data:`WIRE_VERSION`.  Every worker sends the fingerprint
when registering (and every HTTP request carries it in the
``X-Repro-Wire`` header); the broker rejects a mismatch with ``409``.
Because the pin is a *literal* — not introspected at runtime — the
broker stays stdlib-only, and the golden test
(``tests/test_fleet.py``) fails whenever the live dataclasses drift
from the pin, forcing a deliberate :data:`WIRE_VERSION` bump.

Changing any pinned field set MUST bump ``WIRE_VERSION``.

**Authenticated wire.**  Next to the fingerprint, every request can
carry a shared-key HMAC in ``X-Repro-Auth``, formatted
``<timestamp>:<nonce>:<mac>``: HMAC-SHA256 of a canonical request
digest (method, path+query, the wire fingerprint, the timestamp, the
random per-request nonce, and the body — length-framed so no field can
masquerade as another).  Verification is constant-time and the server
additionally rejects stale timestamps (outside
:data:`AUTH_FRESHNESS_S`) and nonces it has already accepted within
the freshness window (:class:`NonceCache`), so a captured request —
``/shutdown``, ``/submit`` — cannot be replayed verbatim later.  A
broker started with a key rejects failures with ``401`` (surfaced
client-side as ``WireAuthError``); health probes stay open so monitors
and CI readiness checks need no key.  Keys load from
``--auth-key-file`` or the ``REPRO_FLEET_AUTH_KEY`` /
``REPRO_FLEET_AUTH_KEY_FILE`` environment variables
(:func:`load_auth_key`), identically on broker, worker, scheduler and
client.

**Threat model.**  The MAC proves the sender holds the fleet key and
the request was built within the freshness window; it does not
encrypt, and two brokers sharing one key cannot tell each other's
traffic apart — a fresh request signed for broker A verifies on
broker B within the window.  Run one key per fleet (the intended
deployment) and the wire defends against cross-fleet traffic,
key-less tampering, and verbatim replay; it is not a substitute for
network-level isolation against an active in-path attacker.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import pickle
import time

__all__ = [
    "AUTH_FRESHNESS_S",
    "AUTH_HEADER",
    "AUTH_KEY_ENV",
    "AUTH_KEY_FILE_ENV",
    "NonceCache",
    "PINNED_FIELDS",
    "TRACE_HEADER",
    "WIRE_HEADER",
    "WIRE_VERSION",
    "dump",
    "live_fields",
    "load",
    "load_auth_key",
    "request_mac",
    "sign_request",
    "verify_request_auth",
    "wire_fingerprint",
]

#: Bump whenever a pinned type gains/loses/renames a field, or its
#: semantics change incompatibly.  v2: survivability protocol —
#: client-generated task ids on /submit (idempotent retry), journal
#: segments on /heartbeat, /journal resume fetch, HMAC auth.
WIRE_VERSION = 2

#: HTTP header carrying the wire fingerprint on every fleet request.
WIRE_HEADER = "X-Repro-Wire"

#: HTTP header carrying ``<timestamp>:<nonce>:<mac>`` when a shared
#: key is set.
AUTH_HEADER = "X-Repro-Auth"

#: HTTP header carrying the fleet trace context,
#: ``"<trace_id>:<parent_span_id>"`` — stamped by the scheduler on
#: ``/submit``, stored against the task, echoed on the ``/lease``
#: response and adopted by the worker so every cell's spans parent
#: into the originating session.  Pure telemetry: optional, additive
#: (no :data:`WIRE_VERSION` bump) and outside the request MAC — a
#: stripped or altered context degrades the merged timeline, never
#: the work.
TRACE_HEADER = "X-Repro-Trace"

#: Signed-timestamp acceptance window, seconds either side of the
#: verifier's clock.  Wide enough for rack-local clock drift and a
#: broker restart mid-request; narrow enough that a captured request
#: goes stale quickly.
AUTH_FRESHNESS_S = 120.0

#: Environment fallbacks for the shared key (value, or a file path).
AUTH_KEY_ENV = "REPRO_FLEET_AUTH_KEY"
AUTH_KEY_FILE_ENV = "REPRO_FLEET_AUTH_KEY_FILE"

#: The dataclass field sets (in declaration order) of every type that
#: crosses the broker.  A pure literal so the broker never imports
#: numpy; kept honest by the golden test against :func:`live_fields`.
PINNED_FIELDS: dict[str, tuple[str, ...]] = {
    "Job": ("benchmark", "method", "repeat", "fn", "kwargs"),
    "JobOutcome": (
        "job",
        "value",
        "error",
        "queue_wait_s",
        "exec_s",
        "worker",
        "gt_cache",
        "t_start",
    ),
    "EvalJob": ("order", "step", "config_index", "fidelity"),
    "EvalOutcome": (
        "job",
        "outcome",
        "error",
        "queue_wait_s",
        "exec_s",
        "worker",
    ),
    "ResilientOutcome": (
        "result",
        "requested",
        "fidelity",
        "attempts",
        "degraded",
        "failed",
        "wasted_runtime_s",
        "failures",
    ),
}

#: Fixed pickle protocol so mixed-Python fleets agree on the framing.
PICKLE_PROTOCOL = 4


def wire_fingerprint() -> str:
    """Hex digest of the wire version plus every pinned field set."""
    h = hashlib.blake2b(digest_size=8)
    h.update(f"wire-v{WIRE_VERSION}".encode())
    for name in sorted(PINNED_FIELDS):
        h.update(name.encode())
        for field in PINNED_FIELDS[name]:
            h.update(b"." + field.encode())
    return h.hexdigest()


def load_auth_key(path: str | None = None) -> bytes | None:
    """The shared fleet key, or ``None`` (open wire, trusted network).

    Priority: explicit ``path`` (``--auth-key-file``), then the
    ``REPRO_FLEET_AUTH_KEY`` value, then a path in
    ``REPRO_FLEET_AUTH_KEY_FILE``.  Surrounding whitespace is stripped
    so a trailing newline in the key file is harmless.
    """
    if path:
        return _read_key_file(path)
    value = os.environ.get(AUTH_KEY_ENV)
    if value:
        return value.strip().encode()
    file_path = os.environ.get(AUTH_KEY_FILE_ENV)
    if file_path:
        return _read_key_file(file_path)
    return None


def _read_key_file(path: str) -> bytes:
    with open(path, "rb") as handle:
        key = handle.read().strip()
    if not key:
        raise ValueError(f"auth key file {path!r} is empty")
    return key


def request_mac(
    key: bytes, method: str, path: str, body: bytes, ts: str, nonce: str
) -> str:
    """Hex HMAC of the canonical request digest under ``key``.

    The digest length-frames every field (method, path+query, wire
    fingerprint, timestamp, nonce, body), so no concatenation
    ambiguity lets one request authenticate as another, and neither
    the timestamp nor the nonce can be swapped without invalidating
    the MAC.
    """
    h = hashlib.blake2b(digest_size=32)
    for part in (
        method.encode(),
        path.encode(),
        wire_fingerprint().encode(),
        ts.encode(),
        nonce.encode(),
        body or b"",
    ):
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return hmac.new(key, h.digest(), hashlib.sha256).hexdigest()


def sign_request(
    key: bytes,
    method: str,
    path: str,
    body: bytes,
    now: float | None = None,
    nonce: str | None = None,
) -> str:
    """The full ``X-Repro-Auth`` value: ``<timestamp>:<nonce>:<mac>``.

    Called per *delivery attempt* (inside the client's single-shot
    sender), so every retry or duplicated transport delivery carries a
    fresh timestamp and nonce and is never mistaken for a replay.
    """
    ts = f"{time.time() if now is None else now:.3f}"
    nonce = nonce or os.urandom(8).hex()
    return f"{ts}:{nonce}:{request_mac(key, method, path, body, ts, nonce)}"


class NonceCache:
    """Accepted-nonce memory bounding verbatim replay server-side.

    Remembers each accepted ``(nonce, expiry)`` for the freshness
    window; a second request reusing an accepted nonce is a replay and
    fails verification.  Expired entries are pruned on every check and
    the cache is capped (oldest-expiry eviction) so a chatty fleet
    cannot grow it without bound.  Not thread-safe on its own — the
    broker calls it under its state lock.
    """

    def __init__(self, capacity: int = 16384):
        self.capacity = int(capacity)
        self._seen: dict[str, float] = {}

    def admit(self, nonce: str, now: float, ttl_s: float) -> bool:
        """``True`` and remember the nonce, or ``False`` on a replay."""
        expired = [n for n, exp in self._seen.items() if exp <= now]
        for n in expired:
            del self._seen[n]
        if nonce in self._seen:
            return False
        if len(self._seen) >= self.capacity:
            for n, _exp in sorted(self._seen.items(), key=lambda kv: kv[1])[
                : len(self._seen) - self.capacity + 1
            ]:
                del self._seen[n]
        self._seen[nonce] = now + ttl_s
        return True


def verify_request_auth(
    key: bytes,
    method: str,
    path: str,
    body: bytes,
    header: str | None,
    now: float | None = None,
    freshness_s: float = AUTH_FRESHNESS_S,
    nonces: NonceCache | None = None,
) -> bool:
    """Verify one request's ``X-Repro-Auth`` header.

    Checks, in order: the MAC (constant-time, covering the claimed
    timestamp and nonce), timestamp freshness against the verifier's
    clock, and — when ``nonces`` is given — that the nonce has not been
    accepted before within the window.
    """
    ts, sep_a, rest = (header or "").partition(":")
    nonce, sep_b, mac = rest.partition(":")
    if not (sep_a and sep_b and ts and nonce and mac):
        return False
    want = request_mac(key, method, path, body, ts, nonce)
    if not hmac.compare_digest(want, mac):
        return False
    try:
        stamped = float(ts)
    except ValueError:
        return False
    clock = time.time() if now is None else now
    if abs(clock - stamped) > freshness_s:
        return False
    if nonces is not None and not nonces.admit(nonce, clock, freshness_s):
        return False
    return True


def live_fields() -> dict[str, tuple[str, ...]]:
    """The *actual* field sets of the pinned dataclasses.

    Imports the runtime (numpy and all) — called by workers at startup
    and by the golden test, never by the broker.
    """
    import dataclasses

    from repro.core.batch.engine import EvalJob, EvalOutcome
    from repro.core.resilience.retry import ResilientOutcome
    from repro.experiments.parallel import Job, JobOutcome

    return {
        cls.__name__: tuple(
            f.name for f in dataclasses.fields(cls)
        )
        for cls in (Job, JobOutcome, EvalJob, EvalOutcome, ResilientOutcome)
    }


def check_wire_schema() -> None:
    """Raise ``RuntimeError`` when the live dataclasses drift from the pin.

    Workers call this before registering so a worker built from a
    different revision refuses to serve rather than silently
    mis-interpreting payloads.
    """
    live = live_fields()
    if live != PINNED_FIELDS:
        drift = {
            name: (PINNED_FIELDS.get(name), live.get(name))
            for name in sorted(set(PINNED_FIELDS) | set(live))
            if PINNED_FIELDS.get(name) != live.get(name)
        }
        raise RuntimeError(
            "fleet wire schema drift — bump repro.fleet.wire.WIRE_VERSION "
            f"and re-pin PINNED_FIELDS; drifted: {drift}"
        )


def dump(obj: object) -> bytes:
    """Serialize one payload for the wire."""
    return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


def load(data: bytes) -> object:
    """Deserialize one payload off the wire (trusted peers only)."""
    return pickle.loads(data)
