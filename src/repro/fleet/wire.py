"""Fleet wire format: pickled payloads behind a pinned schema guard.

Broker, workers and schedulers exchange :class:`repro.experiments.
parallel.Job` / ``JobOutcome`` and :class:`repro.core.batch.engine.
EvalJob` / ``EvalOutcome`` objects as pickles (the Job/JobOutcome layer
is pickle-clean by construction — the process-pool engine has shipped
them across processes since PR 2).  Pickle is fine between our own
trusted processes on a private network, but it is *silently* wrong
under version skew: an old worker can unpickle a new ``Job`` whose
semantics changed and corrupt a sweep without a single exception.

The guard: :data:`PINNED_FIELDS` pins the dataclass field sets of every
type that crosses the wire, and :func:`wire_fingerprint` hashes the pin
together with :data:`WIRE_VERSION`.  Every worker sends the fingerprint
when registering (and every HTTP request carries it in the
``X-Repro-Wire`` header); the broker rejects a mismatch with ``409``.
Because the pin is a *literal* — not introspected at runtime — the
broker stays stdlib-only, and the golden test
(``tests/test_fleet.py``) fails whenever the live dataclasses drift
from the pin, forcing a deliberate :data:`WIRE_VERSION` bump.

Changing any pinned field set MUST bump ``WIRE_VERSION``.

**Authenticated wire.**  Next to the fingerprint, every request can
carry a shared-key HMAC in ``X-Repro-Auth``: HMAC-SHA256 of a
canonical request digest (method, path+query, body and the wire
fingerprint, length-framed so no field can masquerade as another).
A broker started with a key rejects missing/wrong MACs with ``401``
(surfaced client-side as ``WireAuthError``) using constant-time
comparison; health probes stay open so monitors and CI readiness
checks need no key.  Keys load from ``--auth-key-file`` or the
``REPRO_FLEET_AUTH_KEY`` / ``REPRO_FLEET_AUTH_KEY_FILE`` environment
variables (:func:`load_auth_key`), identically on broker, worker,
scheduler and client.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import pickle

__all__ = [
    "AUTH_HEADER",
    "AUTH_KEY_ENV",
    "AUTH_KEY_FILE_ENV",
    "PINNED_FIELDS",
    "WIRE_HEADER",
    "WIRE_VERSION",
    "dump",
    "live_fields",
    "load",
    "load_auth_key",
    "request_mac",
    "verify_request_mac",
    "wire_fingerprint",
]

#: Bump whenever a pinned type gains/loses/renames a field, or its
#: semantics change incompatibly.  v2: survivability protocol —
#: client-generated task ids on /submit (idempotent retry), journal
#: segments on /heartbeat, /journal resume fetch, HMAC auth.
WIRE_VERSION = 2

#: HTTP header carrying the wire fingerprint on every fleet request.
WIRE_HEADER = "X-Repro-Wire"

#: HTTP header carrying the request HMAC when a shared key is set.
AUTH_HEADER = "X-Repro-Auth"

#: Environment fallbacks for the shared key (value, or a file path).
AUTH_KEY_ENV = "REPRO_FLEET_AUTH_KEY"
AUTH_KEY_FILE_ENV = "REPRO_FLEET_AUTH_KEY_FILE"

#: The dataclass field sets (in declaration order) of every type that
#: crosses the broker.  A pure literal so the broker never imports
#: numpy; kept honest by the golden test against :func:`live_fields`.
PINNED_FIELDS: dict[str, tuple[str, ...]] = {
    "Job": ("benchmark", "method", "repeat", "fn", "kwargs"),
    "JobOutcome": (
        "job",
        "value",
        "error",
        "queue_wait_s",
        "exec_s",
        "worker",
        "gt_cache",
        "t_start",
    ),
    "EvalJob": ("order", "step", "config_index", "fidelity"),
    "EvalOutcome": (
        "job",
        "outcome",
        "error",
        "queue_wait_s",
        "exec_s",
        "worker",
    ),
    "ResilientOutcome": (
        "result",
        "requested",
        "fidelity",
        "attempts",
        "degraded",
        "failed",
        "wasted_runtime_s",
        "failures",
    ),
}

#: Fixed pickle protocol so mixed-Python fleets agree on the framing.
PICKLE_PROTOCOL = 4


def wire_fingerprint() -> str:
    """Hex digest of the wire version plus every pinned field set."""
    h = hashlib.blake2b(digest_size=8)
    h.update(f"wire-v{WIRE_VERSION}".encode())
    for name in sorted(PINNED_FIELDS):
        h.update(name.encode())
        for field in PINNED_FIELDS[name]:
            h.update(b"." + field.encode())
    return h.hexdigest()


def load_auth_key(path: str | None = None) -> bytes | None:
    """The shared fleet key, or ``None`` (open wire, trusted network).

    Priority: explicit ``path`` (``--auth-key-file``), then the
    ``REPRO_FLEET_AUTH_KEY`` value, then a path in
    ``REPRO_FLEET_AUTH_KEY_FILE``.  Surrounding whitespace is stripped
    so a trailing newline in the key file is harmless.
    """
    if path:
        return _read_key_file(path)
    value = os.environ.get(AUTH_KEY_ENV)
    if value:
        return value.strip().encode()
    file_path = os.environ.get(AUTH_KEY_FILE_ENV)
    if file_path:
        return _read_key_file(file_path)
    return None


def _read_key_file(path: str) -> bytes:
    with open(path, "rb") as handle:
        key = handle.read().strip()
    if not key:
        raise ValueError(f"auth key file {path!r} is empty")
    return key


def request_mac(key: bytes, method: str, path: str, body: bytes) -> str:
    """Hex HMAC of the canonical request digest under ``key``.

    The digest length-frames every field (method, path+query, wire
    fingerprint, body), so no concatenation ambiguity lets one request
    authenticate as another.
    """
    h = hashlib.blake2b(digest_size=32)
    for part in (
        method.encode(),
        path.encode(),
        wire_fingerprint().encode(),
        body or b"",
    ):
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return hmac.new(key, h.digest(), hashlib.sha256).hexdigest()


def verify_request_mac(
    key: bytes, method: str, path: str, body: bytes, mac: str | None
) -> bool:
    """Constant-time check of one request's MAC header value."""
    want = request_mac(key, method, path, body)
    return hmac.compare_digest(want, mac or "")


def live_fields() -> dict[str, tuple[str, ...]]:
    """The *actual* field sets of the pinned dataclasses.

    Imports the runtime (numpy and all) — called by workers at startup
    and by the golden test, never by the broker.
    """
    import dataclasses

    from repro.core.batch.engine import EvalJob, EvalOutcome
    from repro.core.resilience.retry import ResilientOutcome
    from repro.experiments.parallel import Job, JobOutcome

    return {
        cls.__name__: tuple(
            f.name for f in dataclasses.fields(cls)
        )
        for cls in (Job, JobOutcome, EvalJob, EvalOutcome, ResilientOutcome)
    }


def check_wire_schema() -> None:
    """Raise ``RuntimeError`` when the live dataclasses drift from the pin.

    Workers call this before registering so a worker built from a
    different revision refuses to serve rather than silently
    mis-interpreting payloads.
    """
    live = live_fields()
    if live != PINNED_FIELDS:
        drift = {
            name: (PINNED_FIELDS.get(name), live.get(name))
            for name in sorted(set(PINNED_FIELDS) | set(live))
            if PINNED_FIELDS.get(name) != live.get(name)
        }
        raise RuntimeError(
            "fleet wire schema drift — bump repro.fleet.wire.WIRE_VERSION "
            f"and re-pin PINNED_FIELDS; drifted: {drift}"
        )


def dump(obj: object) -> bytes:
    """Serialize one payload for the wire."""
    return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


def load(data: bytes) -> object:
    """Deserialize one payload off the wire (trusted peers only)."""
    return pickle.loads(data)
