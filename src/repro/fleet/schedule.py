"""Multi-session fleet scheduler: many tuning sessions, one fleet.

::

    python -m repro.fleet.schedule --broker http://HOST:PORT
        --session a=gemm:ours+random:2 --session b=stencil3d:ours:1
        [--scale smoke|small|paper] [--cache-dir DIR] [--out FILE]
        [--snapshot FILE] [--trace-dir DIR] [--journal-dir DIR]

Each ``--session`` is one independent tuning session — a Table-1-style
sweep of ``(benchmark, methods, repeats)`` cells with its own base
seed.  The scheduler expands every session into the same
:class:`repro.experiments.parallel.Job` list the process-pool engine
would build (same :func:`method_seed` streams), submits each cell to a
per-session broker queue, and aggregates outcomes **in submission
order** — so per-session ADRS/runtime numbers and Pareto fronts are
bitwise identical to a local ``run_benchmark`` at any fleet size,
worker count, or completion order.

Fair-share across sessions is the broker's job (fewest-leases-first
dispatch): N sessions on W workers each hold ~W/N leases, so a small
smoke session is not starved behind a large sweep submitted first.

Ground truth is shared through the **sharded gtcache**
(:mod:`repro.hlsim.gtcache`): pass ``--cache-dir`` and every worker
leasing any session's cell hits the same fingerprint-keyed store —
the first worker to need a benchmark's exhaustive sweep pays for it,
every later cell (any tenant) loads it.

**Trace propagation** (DESIGN.md Sec. 15).  With ``--trace-dir`` the
scheduler mints one trace id per session, records a ``submit`` span
per cell into ``schedule.trace.jsonl``, and stamps every submit
request with ``X-Repro-Trace: <trace>:<submit-span>`` — the broker
records its marker spans under the same id and hands the context to
whichever worker leases the cell, so ``python -m repro.obs.spans``
merges scheduler, broker and all workers into one Perfetto timeline
with ``submit → lease → execute → complete`` flow arrows.  Trace ids
are telemetry only (random, outside every seed stream): results stay
bitwise identical with tracing on or off.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.experiments.harness import TABLE1_METHODS
from repro.fleet.client import BrokerClient
from repro.fleet.wire import dump, load, load_auth_key

__all__ = ["SessionSpec", "run_schedule", "main"]


@dataclass(frozen=True)
class SessionSpec:
    """One tuning session: a (benchmark, methods, repeats) sweep."""

    name: str
    benchmark: str
    methods: tuple[str, ...]
    repeats: int
    base_seed: int = 2021

    @classmethod
    def parse(cls, text: str) -> "SessionSpec":
        """``[NAME=]BENCHMARK:METHOD[+METHOD...]:REPEATS[:SEED]``.

        ``--session a=gemm:ours+random:2`` → session *a*, two repeats
        of *ours* and *random* on *gemm* with the default base seed.
        """
        name, sep, rest = text.partition("=")
        if not sep:
            name, rest = "", text
        parts = rest.split(":")
        if len(parts) not in (3, 4):
            raise ValueError(
                f"bad session spec {text!r}: want "
                "[NAME=]BENCH:METHOD+METHOD:REPEATS[:SEED]"
            )
        benchmark, methods_text, repeats = parts[0], parts[1], int(parts[2])
        methods = tuple(m for m in methods_text.split("+") if m)
        if not methods:
            methods = TABLE1_METHODS
        base_seed = int(parts[3]) if len(parts) == 4 else 2021
        return cls(
            name=name or f"{benchmark}.{'+'.join(methods)}",
            benchmark=benchmark,
            methods=methods,
            repeats=repeats,
            base_seed=base_seed,
        )

    @property
    def queue(self) -> str:
        return f"session.{self.name}"


def _session_jobs(spec: SessionSpec, scale, **job_kwargs):
    """The session's cell list, in the sequential aggregation order."""
    from dataclasses import replace

    from repro.experiments.parallel import method_jobs

    return method_jobs(
        (spec.benchmark,),
        spec.methods,
        replace(scale, n_repeats=spec.repeats),
        spec.base_seed,
        **job_kwargs,
    )


def run_schedule(
    broker_url: str,
    specs: list[SessionSpec],
    scale=None,
    cache_dir: str | Path | None = None,
    trace_dir: str | Path | None = None,
    journal_dir: str | Path | None = None,
    poll_s: float = 0.2,
    timeout_s: float | None = None,
    verbose: bool = False,
    auth_key: bytes | None = None,
    retry_policy=None,
    transport=None,
):
    """Run every session over the fleet; ``{session: benchmark_runs}``.

    ``benchmark_runs`` is the same ``{method: [MethodRun, ...]}``
    mapping :func:`repro.experiments.harness.run_benchmark` returns,
    aggregated in the identical order — bitwise-equal numbers.

    ``auth_key`` signs every request on an authenticated fleet;
    ``retry_policy``/``transport`` feed the scheduler's
    :class:`BrokerClient` (reconnect bounds, chaos injection).  Because
    submits carry client-generated task ids and result polling is
    read-only, the scheduler survives broker restarts mid-sweep.
    """
    from repro.experiments.parallel import (
        JobOutcome,
        _group_method_runs,
        raise_failures,
    )

    if scale is None:
        from repro.experiments.harness import SMALL_SCALE

        scale = SMALL_SCALE
    client = BrokerClient(
        broker_url,
        auth_key=auth_key,
        retry_policy=retry_policy,
        transport=transport,
        identity="schedule",
    )
    spans = None
    trace_writer = None
    if trace_dir:
        from repro.obs.spans import SpanRecorder
        from repro.obs.trace import JsonlTraceWriter

        Path(trace_dir).mkdir(parents=True, exist_ok=True)
        trace_writer = JsonlTraceWriter(
            Path(trace_dir) / "schedule.trace.jsonl"
        )
        spans = SpanRecorder(trace_writer)

    def _submit(spec: SessionSpec, trace_id: str | None, job):
        payload = dump(
            {"kind": "cell", "job": job, "submitted_at": time.time()}
        )
        task_id = uuid.uuid4().hex
        if spans is None:
            return client.submit(spec.queue, payload, task_id=task_id)
        from repro.obs.spans import format_trace_context

        # The submit span is the cell's remote parent: its id travels
        # in X-Repro-Trace, the broker echoes it to the leasing worker,
        # and every engine span the cell records parents back here.
        with spans.span(
            "submit", cat="fleet", trace=trace_id,
            task=task_id, queue=spec.queue, session=spec.name,
        ):
            client.trace_context = format_trace_context(
                trace_id, spans.current_span_id()
            )
            try:
                return client.submit(spec.queue, payload, task_id=task_id)
            finally:
                client.trace_context = None

    sessions: list[tuple[SessionSpec, list, list[str]]] = []
    for spec in specs:
        client.create_queue(spec.queue)
        jobs = _session_jobs(
            spec, scale,
            trace_dir=trace_dir, cache_dir=cache_dir,
            journal_dir=journal_dir,
        )
        # One trace id per session: every span the session's cells emit
        # (any worker, any attempt) lands on the same merged timeline.
        session_trace = uuid.uuid4().hex if spans is not None else None
        task_ids = [_submit(spec, session_trace, job) for job in jobs]
        sessions.append((spec, jobs, task_ids))
        if verbose:
            print(
                f"session {spec.name}: submitted {len(jobs)} cells "
                f"to {spec.queue}"
            )

    if trace_writer is not None:
        trace_writer.close()

    # Poll every outstanding task until all sessions drain (or timeout).
    outcomes: dict[str, object] = {}
    waiting = {
        tid for _, _, task_ids in sessions for tid in task_ids
    }
    deadline = (
        time.monotonic() + timeout_s if timeout_s is not None else None
    )
    while waiting:
        landed = set()
        for task_id in waiting:
            _state, payload = client.result(task_id)
            if payload is not None:
                outcomes[task_id] = load(payload)
                landed.add(task_id)
        waiting -= landed
        if not waiting:
            break
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError(
                f"{len(waiting)} fleet task(s) still outstanding after "
                f"{timeout_s}s"
            )
        time.sleep(poll_s)

    results = {}
    for spec, jobs, task_ids in sessions:
        session_outcomes = []
        for job, task_id in zip(jobs, task_ids):
            outcome = outcomes[task_id]
            if isinstance(outcome, dict):  # agent-level crash wrapper
                outcome = JobOutcome(
                    job=job, error=outcome.get("error", "fleet worker failed")
                )
            session_outcomes.append(outcome)
        raise_failures(session_outcomes)
        results[spec.name] = _group_method_runs(
            (spec.benchmark,), spec.methods, session_outcomes,
            verbose=verbose,
        )[spec.benchmark]
    return results


def _summary(specs, results) -> dict:
    """JSON-able per-session rollup (ADRS/runtime per method)."""
    from repro.experiments.harness import summarize_benchmark

    out = {}
    for spec in specs:
        row = summarize_benchmark(spec.benchmark, results[spec.name])
        out[spec.name] = {
            "benchmark": spec.benchmark,
            "base_seed": spec.base_seed,
            "repeats": spec.repeats,
            "adrs_mean": row.adrs_mean,
            "adrs_std": row.adrs_std,
            "runtime_mean": row.runtime_mean,
        }
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.schedule",
        description="Multiplex tuning sessions over a worker fleet.",
    )
    parser.add_argument(
        "--broker", required=True, help="broker URL, e.g. http://host:8947"
    )
    parser.add_argument(
        "--session", action="append", required=True, metavar="SPEC",
        help="[NAME=]BENCH:METHOD+METHOD:REPEATS[:SEED] (repeatable)",
    )
    parser.add_argument(
        "--scale", choices=("smoke", "small", "paper"), default="small",
    )
    parser.add_argument("--cache-dir", default="")
    parser.add_argument("--trace-dir", default="")
    parser.add_argument("--journal-dir", default="")
    parser.add_argument(
        "--out", default="", help="write the per-session summary JSON here"
    )
    parser.add_argument(
        "--snapshot", default="",
        help="dump the broker's /stats JSON here after the run",
    )
    parser.add_argument(
        "--timeout", type=float, default=0.0,
        help="overall deadline in seconds (0 = wait forever)",
    )
    parser.add_argument(
        "--auth-key-file", default="",
        help="shared HMAC key file for the authenticated wire "
             "(falls back to $REPRO_FLEET_AUTH_KEY[_FILE])",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    from repro.experiments.harness import (
        PAPER_SCALE,
        SMALL_SCALE,
        SMOKE_SCALE,
    )

    scale = {
        "smoke": SMOKE_SCALE, "small": SMALL_SCALE, "paper": PAPER_SCALE
    }[args.scale]
    specs = [SessionSpec.parse(text) for text in args.session]
    auth_key = load_auth_key(args.auth_key_file or None)
    results = run_schedule(
        args.broker,
        specs,
        scale=scale,
        cache_dir=args.cache_dir or None,
        trace_dir=args.trace_dir or None,
        journal_dir=args.journal_dir or None,
        timeout_s=args.timeout or None,
        verbose=args.verbose,
        auth_key=auth_key,
    )
    summary = _summary(specs, results)
    text = json.dumps(summary, indent=2, sort_keys=True)
    print(text)
    if args.out:
        Path(args.out).write_text(text + "\n")
    if args.snapshot:
        stats = BrokerClient(args.broker, auth_key=auth_key).stats()
        Path(args.snapshot).write_text(
            json.dumps(stats, indent=2, sort_keys=True) + "\n"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
