"""Stdlib-only work-queue broker for the tuning fleet.

::

    python -m repro.fleet.broker [--host 127.0.0.1] [--port 8947]
        [--lease-ttl 30] [--state-dir DIR | --log-dir DIR]
        [--compact-bytes N] [--auth-key-file PATH] [--port-file PATH]

The broker holds **named job queues** of opaque pickled payloads (it
never unpickles them — it is pure stdlib and runs anywhere, like the
monitor).  Workers register with capabilities, then repeatedly *lease*
a task: a lease grants exclusive execution rights for ``lease_ttl_s``
seconds, renewable by heartbeat.  A worker that vanishes — SIGKILL,
OOM, power loss — simply stops heartbeating; the lease expires and the
task is re-queued for the next worker.  Because every task in this
system re-executes bitwise-identically (deterministic flows, seeded
methods, journaled cells), a lost worker costs one lease timeout, not
a run.

**Lease state machine** (per task)::

    queued --lease--> leased --complete--> done
      ^                  |
      +---- expire <-----+   (deadline passes without heartbeat)

**Failure semantics.**  Completion is *first-writer-wins*: the first
outcome recorded for a task is kept, any later completion (a stale
leaseholder racing its re-issued replacement) is acknowledged and
dropped as a ``duplicate`` — never double-committed downstream, and
harmless anyway since re-execution produces identical bytes.  A
completion from an expired lease is accepted when the task has not
finished elsewhere: the work is done and the bytes are right.

**Fair share.**  When several queues (one per tuning session) hold
work, a lease request is served from the queue with the fewest leases
currently in flight, ties broken round-robin by least-recently-served
— so ``N`` concurrent sessions on ``W`` workers each hold ``~W/N``
leases regardless of submission order or queue depth.

**Crash safety.**  ``broker.fleet.jsonl`` is a write-ahead journal,
not just a dashboard feed: every transition (including submitted
payloads and completed results, base64-framed) is fsync'd by
:class:`repro.fleet.wal.WalWriter` before the HTTP response leaves.  A
broker started with ``--state-dir`` replays the journal on boot —
queues, leases (TTL clocks resumed against wall time), results and
streamed journal segments all come back — then appends a ``restart``
record and keeps serving the *same* task ids, so clients polling
``/result`` and workers holding leases reconnect transparently.
Submissions carry client-generated task ids, making a retried
``/submit`` (response lost in the crash) idempotent.  The monitor
tails the same file; extra WAL-only fields are ignored by its parser.
Rehydration is *only* performed with ``--state-dir`` — a plain
``--log-dir`` journal is written, never read back, so a leftover log
from an earlier run (or an older record format) can neither crash
startup nor resurrect stale state.  With ``--state-dir`` the journal
is also compacted once it outgrows ``--compact-bytes``: the whole
state is rewritten atomically as one snapshot record and the log
truncated, bounding restart cost and disk for long-lived brokers.

**Mid-cell resume.**  Workers attach their cell-local run-journal
bytes to heartbeats; the broker buffers the newest segment stream per
task (WAL-logged, so it survives restarts) and serves it back via
``/journal`` when the task is re-issued — the replacement worker
replays the streamed prefix instead of re-running from step 0.

**Authenticated wire.**  Started with a shared key (``--auth-key-file``
or the ``REPRO_FLEET_AUTH_KEY`` / ``..._FILE`` env vars), every request
except ``/health``/``/healthz``/``/metrics``/``/best`` must carry a
valid ``X-Repro-Auth`` header — a timestamped, nonce-bearing HMAC
(:func:`repro.fleet.wire.sign_request`).  Stale timestamps (outside
the freshness window) and reused nonces are rejected like bad MACs, so
a captured request cannot be replayed verbatim; failures get ``401``
and an ``auth_reject`` WAL record.  Without a key the wire is open
(trusted network), which is also how the pre-auth tests run.  The
unauthenticated routes expose *only* derived telemetry (no payload
bytes, no task payload access) so probes and scrapers work without
holding the fleet key.

**Observability** (DESIGN.md Sec. 15).  ``/metrics`` serves Prometheus
text — request counters and latency histograms per endpoint, queue
depth / in-flight / oldest-queued-age gauges, lease-to-complete and
WAL-fsync histograms — fed by the thread-safe
:class:`repro.obs.timing.Metrics` registry and
:class:`repro.obs.prom.Histogram`.  ``/best`` serves the fleet-wide
best-so-far nondominated front per session queue, folded from the
front summaries workers attach to segment heartbeats.  An optional
``--trace-file`` records request spans (``broker.submit`` /
``broker.lease`` / ``broker.complete``) into the schema-v7 span trace;
each span carries the submitting session's propagated trace context
(``X-Repro-Trace``), so ``python -m repro.obs.spans`` merges broker,
worker and scheduler files into one cross-process timeline.  All of it
is read-side telemetry: queue decisions, payload bytes and WAL
contents are untouched, so a traced fleet run stays bitwise identical
to an untraced one.
"""

from __future__ import annotations

import argparse
import base64
import json
import os
import sys
import threading
import time
import urllib.parse
import uuid
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.fleet.wal import WalWriter, scan_wal
from repro.fleet.wire import (
    AUTH_FRESHNESS_S,
    AUTH_HEADER,
    TRACE_HEADER,
    WIRE_HEADER,
    NonceCache,
    load_auth_key,
    verify_request_auth,
    wire_fingerprint,
)
from repro.obs.front import FrontTracker
from repro.obs.prom import (
    FSYNC_BUCKETS_S,
    LATENCY_BUCKETS_S,
    LEASE_BUCKETS_S,
    Histogram,
    counter,
    gauge,
    histogram_family,
    render_metrics,
)
from repro.obs.timing import Metrics

__all__ = [
    "FleetBroker",
    "BrokerServer",
    "Task",
    "WorkerInfo",
    "main",
]

#: Default lease TTL: generous against multi-second flow evaluations,
#: short enough that a dead worker's cell is re-issued promptly.
DEFAULT_LEASE_TTL_S = 30.0

QUEUED = "queued"
LEASED = "leased"
DONE = "done"

#: Compact the WAL (snapshot + rotate) once it outgrows this many
#: bytes, for brokers running with ``--state-dir``.  Plain ``--log-dir``
#: keeps the full append-only event history for the monitor.
DEFAULT_COMPACT_BYTES = 8 * 1024 * 1024


def _count_commits(data: bytes) -> int:
    """Commit records in a chunk of streamed journal lines.

    Segments are whole journal lines by construction (the worker ships
    only newline-terminated lines and the broker deduplicates on line
    boundaries), so each line parses independently; only a top-level
    ``"event": "commit"`` counts — a traceback or error string that
    merely *quotes* a commit record does not.
    """
    count = 0
    for line in data.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(record, dict) and record.get("event") == "commit":
            count += 1
    return count


@dataclass
class Task:
    """One unit of queued work (payload opaque to the broker).

    ``trace`` is the submitter's propagated ``X-Repro-Trace`` context
    (telemetry only — never part of dispatch decisions);
    ``submitted_wall``/``leased_wall`` stamp the queue-age gauge and
    the lease-to-complete latency histogram.
    """

    task_id: str
    queue: str
    payload: bytes
    seq: int
    state: str = QUEUED
    attempts: int = 0
    expiries: int = 0
    lease_id: str | None = None
    worker: str | None = None
    deadline: float | None = None  # monotonic
    result: bytes | None = None
    completed_by: str | None = None
    exec_s: float = 0.0
    trace: str | None = None
    submitted_wall: float | None = None
    leased_wall: float | None = None


@dataclass
class WorkerInfo:
    """One registered worker and its advertised capabilities."""

    worker_id: str
    capabilities: dict = field(default_factory=dict)
    leases_taken: int = 0
    completed: int = 0
    expired: int = 0
    busy_s: float = 0.0


@dataclass
class _Stream:
    """The buffered journal prefix of one task (newest lease wins)."""

    lease_id: str
    data: bytes = b""
    commits: int = 0


class FleetBroker:
    """The queue/lease state machine (transport-free, fully locked).

    ``clock`` is injectable (monotonic seconds) so tests drive lease
    expiry deterministically without sleeping; ``wallclock`` is the
    wall-time source persisted in WAL records, injectable so restart
    tests can replay lease deadlines against a fake epoch.
    """

    def __init__(
        self,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        log_path: str | Path | None = None,
        clock=time.monotonic,
        state_dir: str | Path | None = None,
        auth_key: bytes | None = None,
        wallclock=time.time,
        compact_bytes: int | None = None,
        auth_freshness_s: float = AUTH_FRESHNESS_S,
        trace_path: str | Path | None = None,
    ):
        self.lease_ttl_s = float(lease_ttl_s)
        self.auth_key = auth_key
        self.auth_freshness_s = float(auth_freshness_s)
        self._nonces = NonceCache()
        self._clock = clock
        self._wallclock = wallclock
        self._lock = threading.Lock()
        self._queues: dict[str, deque[str]] = {}
        self._tasks: dict[str, Task] = {}
        self._leases: dict[str, str] = {}  # lease_id -> task_id
        self._workers: dict[str, WorkerInfo] = {}
        self._active: dict[str, int] = {}  # queue -> leases in flight
        self._served: dict[str, int] = {}  # queue -> last-served tick
        self._streams: dict[str, _Stream] = {}  # task_id -> journal prefix
        self._seq = 0
        self._tick = 0
        self.duplicates = 0
        self.expiries = 0
        self.restarts = 0
        self.auth_rejects = 0
        self.reconnects = 0
        self.resume_grants = 0
        self.submits = 0
        self.leases = 0
        self.completions = 0
        self.heartbeats = 0
        self.wal_records = 0
        self._started = self._clock()
        # Telemetry plane: per-endpoint request counters/latency, the
        # lease-to-complete and WAL-fsync histograms, and the
        # best-so-far aggregation workers feed via heartbeats.  All
        # read-side — dispatch and WAL contents never depend on them.
        self.metrics = Metrics()
        self.request_latency: dict[str, Histogram] = {}
        self.lease_to_complete = Histogram(LEASE_BUCKETS_S)
        self.wal_fsync = Histogram(FSYNC_BUCKETS_S)
        self._task_fronts: dict[str, dict] = {}  # task_id -> summary
        self._queue_best: dict[str, dict] = {}  # queue -> merged summary
        self._spans = None
        self._trace_writer = None
        if trace_path is not None:
            from repro.obs.spans import SpanRecorder
            from repro.obs.trace import JsonlTraceWriter

            self._trace_writer = JsonlTraceWriter(trace_path)
            self._spans = SpanRecorder(self._trace_writer)
        self._wal: WalWriter | None = None
        # Rehydration is opt-in via state_dir: a plain --log-dir journal
        # is written, never read back (PR-8 semantics), so a leftover
        # old-format log can neither crash startup nor resurrect stale
        # queues into a run that expected a fresh broker.
        rehydrate = state_dir is not None
        if compact_bytes is None:
            compact_bytes = DEFAULT_COMPACT_BYTES if rehydrate else 0
        self._compact_bytes = int(compact_bytes)
        self._compact_floor = 0
        wal_path = self._resolve_wal_path(state_dir, log_path)
        if wal_path is not None:
            start_seq = 0
            if rehydrate and wal_path.exists():
                last_seq = -1
                valid = 0
                for record, valid in scan_wal(wal_path):
                    self._apply(record)
                    try:
                        last_seq = int(record.get("seq", last_seq))
                    except (TypeError, ValueError):
                        pass
                if valid < wal_path.stat().st_size:
                    os.truncate(wal_path, valid)  # drop the torn tail
                start_seq = last_seq + 1
            self._wal = WalWriter(
                wal_path,
                start_seq=start_seq,
                observe_fsync=self.wal_fsync.observe,
            )
            if start_seq:
                with self._lock:
                    self.restarts += 1
                    self._log("restart")

    @staticmethod
    def _resolve_wal_path(
        state_dir: str | Path | None, log_path: str | Path | None
    ) -> Path | None:
        if state_dir is not None:
            return Path(state_dir) / "broker.fleet.jsonl"
        if log_path is not None:
            return Path(log_path)
        return None

    # ------------------------------------------------------------------
    # write-ahead journal
    # ------------------------------------------------------------------

    def _log(self, event: str, **fields) -> None:
        """Append one fsync'd WAL record (lock held by callers).

        When the log outgrows the compaction threshold it is atomically
        rewritten as one snapshot record (sequence numbering continues),
        bounding restart cost and disk for long-lived brokers.  The
        doubling floor keeps a state too big to shrink below the
        threshold from re-compacting on every append.
        """
        if self._wal is None:
            return
        self._wal.append({"event": event, "t": self._wallclock(), **fields})
        self.wal_records += 1
        if (
            self._compact_bytes
            and self._wal.bytes >= self._compact_bytes
            and self._wal.bytes >= 2 * self._compact_floor
        ):
            self._wal.rotate([self._snapshot_record()])
            self._compact_floor = self._wal.bytes

    def _apply(self, record: dict) -> None:
        """Replay one WAL record into in-memory state (rehydration only).

        The inverse of every ``_log`` call site: mutations without
        re-logging.  Lease deadlines are recovered by translating the
        persisted wall-clock expiry back onto the monotonic clock, so a
        lease survives a broker outage shorter than its remaining TTL
        and expires immediately after a longer one.

        Defensive by design: records from an older wire revision (or
        hand-damaged logs) may lack fields or reference unknown tasks —
        every branch degrades to skipping the record rather than
        crashing the restart.
        """
        event = record.get("event")
        if event == "queue":
            queue = record.get("queue")
            if queue:
                self._ensure_queue(queue)
        elif event == "submit":
            queue, task_id = record.get("queue"), record.get("task")
            if not queue or not task_id:
                return
            self._ensure_queue(queue)
            task = Task(
                task_id=task_id,
                queue=queue,
                payload=base64.b64decode(record.get("payload_b64", "")),
                seq=self._seq,
                trace=record.get("trace") or None,
                submitted_wall=record.get("t"),
            )
            self._seq += 1
            self.submits += 1
            self._tasks[task.task_id] = task
            self._queues[queue].append(task.task_id)
        elif event == "register":
            worker_id = record.get("worker")
            if worker_id:
                self._workers[worker_id] = WorkerInfo(
                    worker_id=worker_id,
                    capabilities=dict(record.get("capabilities") or {}),
                )
        elif event == "lease":
            task = self._tasks.get(record.get("task", ""))
            lease_id = record.get("lease")
            if task is None or not lease_id:
                return
            try:
                self._queues[task.queue].remove(task.task_id)
            except ValueError:
                pass
            task.state = LEASED
            task.lease_id = lease_id
            task.worker = record.get("worker")
            task.attempts = int(record.get("attempt", task.attempts + 1))
            task.deadline = self._replayed_deadline(record)
            task.leased_wall = record.get("t", task.leased_wall)
            self.leases += 1
            self._leases[lease_id] = task.task_id
            self._active[task.queue] += 1
            self._served[task.queue] = self._tick
            self._tick += 1
            if task.worker in self._workers:
                self._workers[task.worker].leases_taken += 1
        elif event == "renew":
            self.heartbeats += 1
            task = self._tasks.get(record.get("task", ""))
            if task is not None and task.state == LEASED:
                task.deadline = self._replayed_deadline(record)
        elif event == "expire":
            task = self._tasks.get(record.get("task", ""))
            if task is not None and task.state == LEASED:
                self._leases.pop(task.lease_id, None)
                self._active[task.queue] -= 1
                self.expiries += 1
                task.expiries += 1
                if task.worker in self._workers:
                    self._workers[task.worker].expired += 1
                task.state = QUEUED
                task.lease_id = None
                task.worker = None
                task.deadline = None
                self._queues[task.queue].appendleft(task.task_id)
        elif event == "complete":
            if record.get("status") != "accepted":
                self.duplicates += 1
                return
            task = self._tasks.get(record.get("task", ""))
            if task is None:
                return
            if task.state == LEASED and task.lease_id is not None:
                self._leases.pop(task.lease_id, None)
                self._active[task.queue] -= 1
            elif task.state == QUEUED:
                try:
                    self._queues[task.queue].remove(task.task_id)
                except ValueError:
                    pass
            task.state = DONE
            task.result = base64.b64decode(record.get("result_b64", ""))
            task.completed_by = record.get("worker", "")
            task.exec_s = float(record.get("exec_s", 0.0))
            task.lease_id = None
            task.deadline = None
            self.completions += 1
            worker = record.get("worker", "")
            if worker in self._workers:
                self._workers[worker].completed += 1
                self._workers[worker].busy_s += task.exec_s
            self._streams.pop(task.task_id, None)
        elif event == "segment":
            task_id, lease_id = record.get("task"), record.get("lease")
            if not task_id or not lease_id:
                return
            data = base64.b64decode(record.get("data_b64", ""))
            offset = record.get("offset")
            self._apply_segment(
                task_id, lease_id, data,
                bool(record.get("reset")),
                None if offset is None else int(offset),
            )
        elif event == "snapshot":
            self._apply_snapshot(record)
        elif event == "resume_grant":
            self.resume_grants += 1
        elif event == "restart":
            self.restarts += 1
        elif event == "auth_reject":
            self.auth_rejects += 1
        elif event == "reconnect":
            self.reconnects += 1
        # "shutdown" and unknown events need no state.

    def _replayed_deadline(self, record: dict) -> float:
        """Monotonic deadline recovered from a persisted wall expiry."""
        expires_wall = record.get("expires_wall")
        if expires_wall is None:
            return self._clock() + self.lease_ttl_s
        return self._clock() + max(
            0.0, float(expires_wall) - self._wallclock()
        )

    # ------------------------------------------------------------------
    # snapshot compaction
    # ------------------------------------------------------------------

    def _snapshot_record(self) -> dict:
        """The full broker state as one replayable WAL record."""
        now, wall = self._clock(), self._wallclock()
        tasks = {}
        for tid, t in self._tasks.items():
            entry: dict = {
                "queue": t.queue, "seq": t.seq, "state": t.state,
                "attempts": t.attempts, "expiries": t.expiries,
                "lease": t.lease_id, "worker": t.worker,
                "payload_b64": base64.b64encode(t.payload).decode(),
                "exec_s": t.exec_s,
                "trace": t.trace,
                "submitted_wall": t.submitted_wall,
                "leased_wall": t.leased_wall,
            }
            if t.deadline is not None:
                entry["expires_wall"] = wall + (t.deadline - now)
            if t.result is not None:
                entry["result_b64"] = base64.b64encode(t.result).decode()
                entry["completed_by"] = t.completed_by
            tasks[tid] = entry
        return {
            "event": "snapshot",
            "t": wall,
            "queues": {q: list(p) for q, p in self._queues.items()},
            "served": dict(self._served),
            "tick": self._tick,
            "next_task_seq": self._seq,
            "tasks": tasks,
            "workers": {
                w.worker_id: {
                    "capabilities": w.capabilities,
                    "leases_taken": w.leases_taken,
                    "completed": w.completed,
                    "expired": w.expired,
                    "busy_s": w.busy_s,
                }
                for w in self._workers.values()
            },
            "streams": {
                tid: {
                    "lease": s.lease_id, "commits": s.commits,
                    "data_b64": base64.b64encode(s.data).decode(),
                }
                for tid, s in self._streams.items()
            },
            "counters": {
                "duplicates": self.duplicates,
                "expiries": self.expiries,
                "restarts": self.restarts,
                "auth_rejects": self.auth_rejects,
                "reconnects": self.reconnects,
                "resume_grants": self.resume_grants,
                "submits": self.submits,
                "leases": self.leases,
                "completions": self.completions,
                "heartbeats": self.heartbeats,
            },
        }

    def _apply_snapshot(self, record: dict) -> None:
        """Replace in-memory state with a compacted snapshot record."""
        self._queues = {
            q: deque(tids)
            for q, tids in (record.get("queues") or {}).items()
        }
        self._served = {
            q: int(v) for q, v in (record.get("served") or {}).items()
        }
        for q in self._queues:
            self._served.setdefault(q, -1)
        self._active = {q: 0 for q in self._queues}
        self._tick = int(record.get("tick", 0))
        self._seq = int(record.get("next_task_seq", 0))
        self._tasks = {}
        self._leases = {}
        self._streams = {}
        self._workers = {}
        for wid, info in (record.get("workers") or {}).items():
            worker = WorkerInfo(
                worker_id=wid,
                capabilities=dict(info.get("capabilities") or {}),
            )
            worker.leases_taken = int(info.get("leases_taken", 0))
            worker.completed = int(info.get("completed", 0))
            worker.expired = int(info.get("expired", 0))
            worker.busy_s = float(info.get("busy_s", 0.0))
            self._workers[wid] = worker
        for tid, entry in (record.get("tasks") or {}).items():
            task = Task(
                task_id=tid,
                queue=entry.get("queue", "?"),
                payload=base64.b64decode(entry.get("payload_b64", "")),
                seq=int(entry.get("seq", 0)),
                state=entry.get("state", QUEUED),
                attempts=int(entry.get("attempts", 0)),
                expiries=int(entry.get("expiries", 0)),
                lease_id=entry.get("lease"),
                worker=entry.get("worker"),
                exec_s=float(entry.get("exec_s", 0.0)),
                trace=entry.get("trace") or None,
                submitted_wall=entry.get("submitted_wall"),
                leased_wall=entry.get("leased_wall"),
            )
            if "result_b64" in entry:
                task.result = base64.b64decode(entry["result_b64"])
                task.completed_by = entry.get("completed_by", "")
            self._ensure_queue(task.queue)
            self._tasks[tid] = task
            if task.state == LEASED and task.lease_id:
                task.deadline = self._replayed_deadline(entry)
                self._leases[task.lease_id] = tid
                self._active[task.queue] += 1
        for tid, s in (record.get("streams") or {}).items():
            self._streams[tid] = _Stream(
                lease_id=s.get("lease", ""),
                data=base64.b64decode(s.get("data_b64", "")),
                commits=int(s.get("commits", 0)),
            )
        for name, value in (record.get("counters") or {}).items():
            if name in (
                "duplicates", "expiries", "restarts",
                "auth_rejects", "reconnects", "resume_grants",
                "submits", "leases", "completions", "heartbeats",
            ):
                setattr(self, name, int(value))

    def _ensure_queue(self, queue: str) -> None:
        if queue not in self._queues:
            self._queues[queue] = deque()
            self._active[queue] = 0
            self._served[queue] = -1

    def _apply_segment(
        self,
        task_id: str,
        lease_id: str,
        data: bytes,
        reset: bool,
        offset: int | None = None,
    ) -> _Stream:
        """Fold one journal segment into the task's stream buffer.

        A segment from a *different* lease (re-issued task) or with the
        reset flag (worker's journal was rewritten by ``continue_from``)
        replaces the buffer; otherwise it appends.  ``offset`` — the
        segment's start in stream coordinates — deduplicates
        re-delivered bytes: a retried heartbeat whose first delivery
        landed (response lost) only appends what the buffer is missing.
        """
        stream = self._streams.get(task_id)
        if stream is None or reset or stream.lease_id != lease_id:
            stream = _Stream(lease_id=lease_id)
            self._streams[task_id] = stream
        have = len(stream.data)
        if offset is None:
            offset = have
        if offset > have:
            return stream  # gap: unacked bytes were never sent — drop
        new = data[have - offset:]
        if new:
            stream.data += new
            stream.commits += _count_commits(new)
        return stream

    # ------------------------------------------------------------------
    # lease expiry
    # ------------------------------------------------------------------

    def _expire_leases(self, now: float) -> None:
        """Re-queue every leased task whose deadline passed (lock held).

        Expired tasks go to the *front* of their queue so a re-issued
        cell does not wait behind the whole backlog it already waited
        through once.  The task's stream buffer is kept: it is exactly
        the journal prefix the replacement worker resumes from.
        """
        for lease_id in [
            lid
            for lid, tid in self._leases.items()
            if self._tasks[tid].deadline is not None
            and self._tasks[tid].deadline < now
        ]:
            task = self._tasks[self._leases.pop(lease_id)]
            self.expiries += 1
            task.expiries += 1
            self._active[task.queue] -= 1
            if task.worker in self._workers:
                self._workers[task.worker].expired += 1
            self._log(
                "expire",
                queue=task.queue,
                task=task.task_id,
                worker=task.worker,
                attempts=task.attempts,
            )
            task.state = QUEUED
            task.lease_id = None
            task.worker = None
            task.deadline = None
            self._queues[task.queue].appendleft(task.task_id)

    # ------------------------------------------------------------------
    # public API (each entry point sweeps expired leases first)
    # ------------------------------------------------------------------

    def register(self, worker_id: str, capabilities: dict | None = None) -> dict:
        with self._lock:
            self._workers[worker_id] = WorkerInfo(
                worker_id=worker_id, capabilities=dict(capabilities or {})
            )
            self._log(
                "register", worker=worker_id,
                capabilities=dict(capabilities or {}),
            )
            return {"lease_ttl_s": self.lease_ttl_s}

    def create_queue(self, queue: str) -> None:
        with self._lock:
            if queue not in self._queues:
                self._ensure_queue(queue)
                self._log("queue", queue=queue)

    def _request_span(self, name: str, trace_text: str | None, **args):
        """A request-span context under the task's propagated trace.

        No-op without ``--trace-file``.  The span parents into the
        submitter's span (``remote_parent``) so the exporter chains
        ``submit → lease → execute → complete`` across processes.
        """
        if self._spans is None:
            return nullcontext()
        from repro.obs.spans import parse_trace_context

        trace_id, remote_parent = parse_trace_context(trace_text)
        return self._spans.span(
            name, cat="broker",
            trace=trace_id, remote_parent=remote_parent, **args,
        )

    def submit(
        self,
        queue: str,
        payload: bytes,
        task_id: str | None = None,
        trace: str | None = None,
    ) -> str:
        """Enqueue one payload; idempotent on a client-supplied id.

        A retried ``/submit`` whose first response was lost (broker
        crash, dropped connection) re-sends the same ``task_id``; the
        broker returns the existing task without re-queueing it.
        ``trace`` is the submitter's ``X-Repro-Trace`` context, stored
        on the task and echoed to the leasing worker.
        """
        with self._lock:
            if task_id is not None and task_id in self._tasks:
                return task_id
            if task_id is None:
                task_id = uuid.uuid4().hex
            if queue not in self._queues:
                self._ensure_queue(queue)
                self._log("queue", queue=queue)
            task = Task(
                task_id=task_id, queue=queue, payload=payload, seq=self._seq,
                trace=trace or None,
                submitted_wall=self._wallclock(),
            )
            self._seq += 1
            self.submits += 1
            self._tasks[task_id] = task
            self._queues[queue].append(task_id)
            self._log(
                "submit", queue=queue, task=task_id,
                payload_b64=base64.b64encode(payload).decode(),
                **({"trace": trace} if trace else {}),
            )
        with self._request_span(
            "broker.submit", trace, task=task_id, queue=queue
        ):
            pass
        return task_id

    def _pick_queue(self, allowed: set[str] | None) -> str | None:
        """Fair-share queue choice (lock held): fewest in-flight leases
        first, least-recently-served breaking ties."""
        candidates = [
            q
            for q, pending in self._queues.items()
            if pending and (allowed is None or q in allowed)
        ]
        if not candidates:
            return None
        return min(
            candidates, key=lambda q: (self._active[q], self._served[q])
        )

    def lease(
        self, worker_id: str, queues: list[str] | None = None
    ) -> dict | None:
        """Grant one task to ``worker_id``, or ``None`` when idle.

        ``queues`` restricts the grant to the worker's capability set.
        Returns ``{task_id, lease_id, queue, ttl_s, payload, attempt,
        trace}``.
        """
        now = self._clock()
        with self._lock:
            self._expire_leases(now)
            queue = self._pick_queue(set(queues) if queues else None)
            if queue is None:
                return None
            task = self._tasks[self._queues[queue].popleft()]
            lease_id = uuid.uuid4().hex
            task.state = LEASED
            task.lease_id = lease_id
            task.worker = worker_id
            task.deadline = now + self.lease_ttl_s
            task.attempts += 1
            task.leased_wall = self._wallclock()
            self.leases += 1
            self._leases[lease_id] = task.task_id
            self._active[queue] += 1
            self._served[queue] = self._tick
            self._tick += 1
            if worker_id in self._workers:
                self._workers[worker_id].leases_taken += 1
            self._log(
                "lease", queue=queue, task=task.task_id, worker=worker_id,
                attempt=task.attempts, lease=lease_id,
                expires_wall=self._wallclock() + self.lease_ttl_s,
            )
            grant = {
                "task_id": task.task_id,
                "lease_id": lease_id,
                "queue": queue,
                "ttl_s": self.lease_ttl_s,
                "attempt": task.attempts,
                "payload": task.payload,
                "trace": task.trace,
            }
        with self._request_span(
            "broker.lease", grant["trace"],
            task=grant["task_id"], queue=queue, worker=worker_id,
            attempt=grant["attempt"],
        ):
            pass
        return grant

    def heartbeat(
        self,
        lease_id: str,
        segment: bytes | None = None,
        reset: bool = False,
        offset: int | None = None,
        front: dict | None = None,
    ) -> bool:
        """Renew one lease; ``False`` means it already expired (stop
        working — the task has been or will be re-issued).

        ``segment`` carries new cell-journal bytes from the worker;
        they are buffered (and WAL-logged) against the task so a
        re-issued lease can resume mid-cell.  A segment on a dead lease
        is dropped — the previous buffer is exactly the resume prefix.

        ``front`` is the worker's running best-so-far front summary
        (:meth:`repro.obs.front.FrontTracker.summary`) for the task —
        folded into the fleet-wide per-queue aggregate ``/best``
        serves.  Telemetry only: malformed summaries are dropped, and
        a heartbeat never fails over its front.
        """
        now = self._clock()
        with self._lock:
            self._expire_leases(now)
            task_id = self._leases.get(lease_id)
            if task_id is None:
                return False
            task = self._tasks[task_id]
            task.deadline = now + self.lease_ttl_s
            self.heartbeats += 1
            self._log(
                "renew", queue=task.queue, task=task_id, worker=task.worker,
                expires_wall=self._wallclock() + self.lease_ttl_s,
            )
            if segment or reset:
                stream = self._apply_segment(
                    task_id, lease_id, segment or b"", reset, offset
                )
                self._log(
                    "segment", task=task_id, lease=lease_id,
                    bytes=len(stream.data), commits=stream.commits,
                    reset=bool(reset), offset=offset,
                    data_b64=base64.b64encode(segment or b"").decode(),
                )
            if isinstance(front, dict):
                self._fold_front(task_id, task.queue, front)
            return True

    def _fold_front(self, task_id: str, queue: str, front: dict) -> None:
        """Fold one task's front summary into the queue's best-so-far
        (lock held).  A hypervolume improvement is journaled as a
        ``best`` WAL record for the monitor's fleet pane."""
        self._task_fronts[task_id] = front
        summaries = [
            summary
            for tid, summary in self._task_fronts.items()
            if (t := self._tasks.get(tid)) is not None and t.queue == queue
        ]
        try:
            merged = FrontTracker.merge_summaries(summaries)
        except Exception:
            return  # a malformed summary never fails a heartbeat
        previous = self._queue_best.get(queue)
        merged["t"] = self._wallclock()
        self._queue_best[queue] = merged
        if previous is None or merged["hv"] > previous.get("hv", 0.0):
            self._log(
                "best", queue=queue, hv=merged["hv"], n=merged["n"],
                commits=merged.get("commits", 0),
            )

    def journal(self, task_id: str, grant: bool = False) -> tuple[bytes, int]:
        """``(buffered_journal_bytes, commits)`` streamed for one task.

        ``grant=True`` marks the fetch as a resume grant (the worker is
        about to replay this prefix) in the WAL and stats.
        """
        with self._lock:
            stream = self._streams.get(task_id)
            if stream is None:
                return b"", 0
            if grant and stream.data:
                self.resume_grants += 1
                self._log(
                    "resume_grant", task=task_id,
                    bytes=len(stream.data), commits=stream.commits,
                )
            return stream.data, stream.commits

    def reconnect(self, worker: str, failures: int, outage_s: float) -> None:
        """Record one client/worker reconnect after a broker outage."""
        with self._lock:
            self.reconnects += 1
            self._log(
                "reconnect", worker=worker, failures=int(failures),
                outage_s=float(outage_s),
            )

    def auth_reject(self, path: str) -> None:
        """Record one rejected request (bad or missing HMAC)."""
        with self._lock:
            self.auth_rejects += 1
            self._log("auth_reject", path=path)

    def check_auth(
        self, method: str, path: str, body: bytes, header: str | None
    ) -> bool:
        """Verify one request's auth header; log and count a failure.

        Beyond the MAC itself, the timestamp must fall within the
        freshness window and the nonce must be new — a captured
        request replayed verbatim (same header bytes) fails here even
        inside the window.  The nonce cache lives under the state lock.
        """
        if self.auth_key is None:
            return True
        with self._lock:
            ok = verify_request_auth(
                self.auth_key, method, path, body, header,
                now=self._wallclock(),
                freshness_s=self.auth_freshness_s,
                nonces=self._nonces,
            )
            if not ok:
                self.auth_rejects += 1
                self._log("auth_reject", path=path.partition("?")[0])
        return ok

    def complete(
        self,
        task_id: str,
        payload: bytes,
        lease_id: str | None = None,
        worker: str = "",
        exec_s: float = 0.0,
    ) -> str:
        """Record one outcome; first writer wins.

        Returns ``"accepted"`` or ``"duplicate"`` (outcome already
        recorded — the duplicate is dropped, never surfaced twice).
        An unknown ``task_id`` raises ``KeyError``.
        """
        now = self._clock()
        with self._lock:
            self._expire_leases(now)
            task = self._tasks[task_id]
            if task.state == DONE:
                self.duplicates += 1
                self._log(
                    "complete", queue=task.queue, task=task_id,
                    worker=worker, status="duplicate", exec_s=exec_s,
                )
                return "duplicate"
            if task.state == LEASED and task.lease_id is not None:
                self._leases.pop(task.lease_id, None)
                self._active[task.queue] -= 1
            elif task.state == QUEUED:
                # Stale leaseholder finished after expiry but before the
                # re-issue was granted: accept the bytes, drop the
                # queue entry so the task is never re-leased.
                try:
                    self._queues[task.queue].remove(task_id)
                except ValueError:
                    pass
            task.state = DONE
            task.result = payload
            task.completed_by = worker
            task.exec_s = float(exec_s)
            task.lease_id = None
            task.deadline = None
            self.completions += 1
            if task.leased_wall is not None:
                self.lease_to_complete.observe(
                    max(0.0, self._wallclock() - task.leased_wall)
                )
            if worker in self._workers:
                self._workers[worker].completed += 1
                self._workers[worker].busy_s += float(exec_s)
            self._streams.pop(task_id, None)
            self._log(
                "complete", queue=task.queue, task=task_id, worker=worker,
                status="accepted", exec_s=exec_s,
                result_b64=base64.b64encode(payload).decode(),
            )
            trace = task.trace
            queue = task.queue
        with self._request_span(
            "broker.complete", trace,
            task=task_id, queue=queue, worker=worker,
        ):
            pass
        return "accepted"

    def result(self, task_id: str) -> tuple[str, bytes | None]:
        """``(state, outcome_bytes_or_None)`` for one task."""
        with self._lock:
            self._expire_leases(self._clock())
            task = self._tasks[task_id]
            return task.state, task.result

    @property
    def wal_seq(self) -> int:
        """Next WAL sequence number (0 when running without a WAL)."""
        return self._wal.seq if self._wal is not None else 0

    def healthz(self) -> dict:
        """Liveness snapshot for monitors and CI readiness checks.

        ``last_wal_fsync_age_s`` is the wall age of the newest durable
        WAL record — a stalling disk shows up here before it shows up
        as lease expiries.  ``None`` (JSON ``null``) without a WAL or
        before the first fsync.
        """
        fsync_age = None
        if self._wal is not None and self._wal.last_fsync_wall is not None:
            fsync_age = max(
                0.0, self._wallclock() - self._wal.last_fsync_wall
            )
        return {
            "ok": True,
            "wal_seq": self.wal_seq,
            "uptime_s": self._clock() - self._started,
            "restarts": self.restarts,
            "last_wal_fsync_age_s": fsync_age,
        }

    def observe_request(self, endpoint: str, dur_s: float) -> None:
        """Count one HTTP request and its latency (handler-timed)."""
        self.metrics.incr(f"http.{endpoint}")
        hist = self.request_latency.get(endpoint)
        if hist is None:
            with self._lock:
                hist = self.request_latency.setdefault(
                    endpoint, Histogram(LATENCY_BUCKETS_S)
                )
        hist.observe(dur_s)

    def best(self) -> dict:
        """Fleet-wide best-so-far per session queue (``/best``).

        ``{"queues": {queue: {n, hv, best, points, commits, t}}}`` —
        the per-queue merge of every worker's heartbeat front summary.
        Telemetry only; resets on broker restart.
        """
        with self._lock:
            return {
                "queues": {
                    queue: dict(summary)
                    for queue, summary in sorted(self._queue_best.items())
                },
            }

    def metrics_text(self) -> str:
        """The Prometheus exposition body for ``/metrics``.

        Families and buckets are the registry in DESIGN.md Sec. 15;
        names are stable — dashboards and SLO rules key on them.
        """
        now_wall = self._wallclock()
        with self._lock:
            self._expire_leases(self._clock())
            queue_depth = [
                ({"queue": q}, len(pending))
                for q, pending in sorted(self._queues.items())
            ]
            inflight = [
                ({"queue": q}, self._active[q])
                for q in sorted(self._queues)
            ]
            oldest = []
            for q in sorted(self._queues):
                ages = [
                    now_wall - t.submitted_wall
                    for tid in self._queues[q]
                    if (t := self._tasks.get(tid)) is not None
                    and t.submitted_wall is not None
                ]
                oldest.append(({"queue": q}, max(ages) if ages else 0.0))
            best_hv = [
                ({"queue": q}, summary.get("hv", 0.0))
                for q, summary in sorted(self._queue_best.items())
            ]
            best_n = [
                ({"queue": q}, summary.get("n", 0))
                for q, summary in sorted(self._queue_best.items())
            ]
            counters = {
                "submits": self.submits,
                "leases": self.leases,
                "completions": self.completions,
                "heartbeats": self.heartbeats,
                "expiries": self.expiries,
                "duplicates": self.duplicates,
                "auth_rejects": self.auth_rejects,
                "reconnects": self.reconnects,
                "restarts": self.restarts,
                "resume_grants": self.resume_grants,
                "wal_records": self.wal_records,
            }
            workers = len(self._workers)
            latency_items = sorted(self.request_latency.items())
        requests = [
            ({"endpoint": key[len("http."):]}, value)
            for key, value in sorted(self.metrics.snapshot().items())
            if key.startswith("http.")
        ]
        families = [
            counter("fleet_requests_total",
                    "HTTP requests served, by endpoint.", requests),
            counter("fleet_submits_total",
                    "Tasks submitted.", counters["submits"]),
            counter("fleet_leases_total",
                    "Leases granted.", counters["leases"]),
            counter("fleet_completions_total",
                    "Completions accepted (first writer).",
                    counters["completions"]),
            counter("fleet_duplicate_completions_total",
                    "Completions dropped as duplicates.",
                    counters["duplicates"]),
            counter("fleet_lease_expiries_total",
                    "Leases expired and re-queued.", counters["expiries"]),
            counter("fleet_heartbeats_total",
                    "Lease renewals received.", counters["heartbeats"]),
            counter("fleet_auth_rejects_total",
                    "Requests rejected by wire auth.",
                    counters["auth_rejects"]),
            counter("fleet_reconnects_total",
                    "Client reconnects reported after outages.",
                    counters["reconnects"]),
            counter("fleet_restarts_total",
                    "Broker restarts (WAL rehydrations).",
                    counters["restarts"]),
            counter("fleet_resume_grants_total",
                    "Mid-cell resume prefixes served.",
                    counters["resume_grants"]),
            counter("fleet_wal_records_total",
                    "WAL records appended this process.",
                    counters["wal_records"]),
            gauge("fleet_queue_depth",
                  "Tasks queued (not leased), by queue.", queue_depth),
            gauge("fleet_inflight",
                  "Leases in flight, by queue.", inflight),
            gauge("fleet_oldest_queued_age_seconds",
                  "Age of the oldest queued task, by queue.", oldest),
            gauge("fleet_workers_registered",
                  "Workers ever registered.", workers),
            gauge("fleet_uptime_seconds",
                  "Broker uptime.", self._clock() - self._started),
            gauge("fleet_best_hypervolume",
                  "Fleet-wide best-so-far front hypervolume, by queue.",
                  best_hv),
            gauge("fleet_best_front_size",
                  "Fleet-wide best-so-far front size, by queue.", best_n),
            histogram_family(
                "fleet_request_latency_seconds",
                "HTTP request handling latency, by endpoint.",
                [({"endpoint": endpoint}, hist)
                 for endpoint, hist in latency_items],
            ),
            histogram_family(
                "fleet_lease_to_complete_seconds",
                "Lease grant to accepted completion, per task.",
                self.lease_to_complete,
            ),
            histogram_family(
                "fleet_wal_fsync_seconds",
                "WAL append fsync duration.",
                self.wal_fsync,
            ),
        ]
        return render_metrics(families)

    def stats(self) -> dict:
        """JSON-able snapshot for dashboards and tests."""
        with self._lock:
            self._expire_leases(self._clock())
            return {
                "lease_ttl_s": self.lease_ttl_s,
                "queues": {
                    q: {
                        "queued": len(pending),
                        "leased": self._active[q],
                        "done": sum(
                            1
                            for t in self._tasks.values()
                            if t.queue == q and t.state == DONE
                        ),
                        "submitted": sum(
                            1 for t in self._tasks.values() if t.queue == q
                        ),
                    }
                    for q, pending in self._queues.items()
                },
                "workers": {
                    w.worker_id: {
                        "capabilities": w.capabilities,
                        "leases_taken": w.leases_taken,
                        "completed": w.completed,
                        "expired": w.expired,
                        "busy_s": w.busy_s,
                        "active": [
                            t.task_id
                            for t in self._tasks.values()
                            if t.state == LEASED
                            and t.worker == w.worker_id
                        ],
                    }
                    for w in self._workers.values()
                },
                "expiries": self.expiries,
                "duplicates": self.duplicates,
                "tasks": len(self._tasks),
                "done": sum(
                    1 for t in self._tasks.values() if t.state == DONE
                ),
                "restarts": self.restarts,
                "auth_rejects": self.auth_rejects,
                "reconnects": self.reconnects,
                "resume_grants": self.resume_grants,
                "wal_seq": self.wal_seq,
                "streams": {
                    task_id: {
                        "bytes": len(s.data),
                        "commits": s.commits,
                        "lease": s.lease_id,
                    }
                    for task_id, s in self._streams.items()
                },
            }

    def close(self, shutdown: bool = False) -> None:
        """Close the WAL; ``shutdown=True`` journals a clean exit."""
        if self._wal is not None:
            if shutdown:
                with self._lock:
                    self._log("shutdown")
            self._wal.close()
            self._wal = None
        if self._trace_writer is not None:
            self._trace_writer.close()
            self._trace_writer = None
            self._spans = None


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the :class:`FleetBroker` state machine.

    Control data travels as JSON; task payloads/outcomes as raw pickle
    bytes (``application/octet-stream``) the broker never inspects.
    Every request must carry the wire fingerprint header — a mismatched
    peer (version skew) is rejected with ``409`` before any payload is
    touched — and, when the broker holds a shared key, a valid request
    HMAC (``401`` otherwise).  ``/health`` and ``/healthz`` stay open.
    """

    protocol_version = "HTTP/1.1"
    server_version = "repro-fleet-broker"

    def log_message(self, fmt, *args):  # quiet by default
        if self.server.verbose:  # type: ignore[attr-defined]
            sys.stderr.write(
                f"{self.address_string()} - {fmt % args}\n"
            )

    # -- helpers -------------------------------------------------------

    @property
    def broker(self) -> FleetBroker:
        return self.server.broker  # type: ignore[attr-defined]

    def _body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _send(self, code: int, body: bytes, ctype: str, **extra) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        for key, value in extra.items():
            self.send_header(key.replace("_", "-"), str(value))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, code: int, obj: dict, **extra) -> None:
        self._send(
            code, json.dumps(obj).encode(), "application/json", **extra
        )

    def _check_wire(self) -> bool:
        got = self.headers.get(WIRE_HEADER)
        want = wire_fingerprint()
        if got != want:
            self._json(
                409,
                {
                    "error": "wire fingerprint mismatch",
                    "want": want,
                    "got": got,
                },
            )
            return False
        return True

    def _check_auth(self, method: str, body: bytes) -> bool:
        mac = self.headers.get(AUTH_HEADER)
        if self.broker.check_auth(method, self.path, body, mac):
            return True
        self._json(401, {"error": "authentication failed"})
        return False

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        with self.server.track_inflight():  # type: ignore[attr-defined]
            start = time.perf_counter()
            try:
                self._get()
            finally:
                self.broker.observe_request(
                    self.path.partition("?")[0],
                    time.perf_counter() - start,
                )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        with self.server.track_inflight():  # type: ignore[attr-defined]
            start = time.perf_counter()
            try:
                self._post()
            finally:
                self.broker.observe_request(
                    self.path.partition("?")[0],
                    time.perf_counter() - start,
                )

    def _get(self) -> None:
        path, _, query = self.path.partition("?")
        params = dict(
            part.split("=", 1) for part in query.split("&") if "=" in part
        )
        if path == "/health":
            self._json(200, {"ok": True, "wire": wire_fingerprint()})
            return
        if path == "/healthz":
            self._json(200, self.broker.healthz())
            return
        if path == "/metrics":
            # Unauthenticated like /healthz: derived telemetry only,
            # so Prometheus-style scrapers need no fleet key.
            self._send(
                200,
                self.broker.metrics_text().encode(),
                "text/plain; version=0.0.4",
            )
            return
        if path == "/best":
            self._json(200, self.broker.best())
            return
        if not self._check_auth("GET", b""):
            return
        if path == "/stats":
            self._json(200, self.broker.stats())
        elif path == "/result":
            if not self._check_wire():
                return
            task_id = params.get("task_id", "")
            try:
                state, payload = self.broker.result(task_id)
            except KeyError:
                self._json(404, {"error": f"unknown task {task_id!r}"})
                return
            if payload is None:
                self._json(202, {"state": state})
            else:
                self._send(
                    200, payload, "application/octet-stream", X_State=state
                )
        elif path == "/journal":
            if not self._check_wire():
                return
            data, commits = self.broker.journal(
                params.get("task_id", ""),
                grant=params.get("grant") == "1",
            )
            self._send(
                200, data, "application/octet-stream", X_Commits=commits
            )
        else:
            self._json(404, {"error": f"no route {path!r}"})

    def _post(self) -> None:
        path, _, query = self.path.partition("?")
        params = dict(
            part.split("=", 1) for part in query.split("&") if "=" in part
        )
        body = self._body()
        if not self._check_auth("POST", body):
            return
        if not self._check_wire():
            return
        if path == "/register":
            msg = json.loads(body or b"{}")
            ack = self.broker.register(
                msg.get("worker_id", "?"), msg.get("capabilities") or {}
            )
            self._json(200, ack)
        elif path == "/queues":
            msg = json.loads(body or b"{}")
            self.broker.create_queue(msg["queue"])
            self._json(200, {"ok": True})
        elif path == "/submit":
            task_id = self.broker.submit(
                params.get("queue", "default"), body,
                task_id=params.get("task_id") or None,
                trace=self.headers.get(TRACE_HEADER) or None,
            )
            self._json(200, {"task_id": task_id})
        elif path == "/lease":
            msg = json.loads(body or b"{}")
            grant = self.broker.lease(
                msg.get("worker_id", "?"), msg.get("queues")
            )
            if grant is None:
                # 200 + JSON (not 204): an empty-body status code is
                # awkward through keep-alive http.client connections.
                self._json(200, {"task_id": None})
            else:
                payload = grant.pop("payload")
                extra = {}
                if grant.get("trace"):
                    extra["X_Repro_Trace"] = grant["trace"]
                self._send(
                    200,
                    payload,
                    "application/octet-stream",
                    X_Task_Id=grant["task_id"],
                    X_Lease_Id=grant["lease_id"],
                    X_Queue=grant["queue"],
                    X_Lease_Ttl=grant["ttl_s"],
                    X_Attempt=grant["attempt"],
                    **extra,
                )
        elif path == "/heartbeat":
            # Segment-bearing heartbeats put the lease in the query and
            # the raw journal bytes in the body; plain renewals still
            # send the original JSON body.  ``front`` (URL-encoded
            # JSON) is the worker's best-so-far summary for the task.
            front = None
            front_text = params.get("front")
            if front_text:
                try:
                    front = json.loads(urllib.parse.unquote_plus(front_text))
                except ValueError:
                    front = None  # telemetry never fails a heartbeat
            lease_id = params.get("lease_id")
            if lease_id is not None:
                offset = params.get("offset") or None
                ok = self.broker.heartbeat(
                    lease_id, segment=body or None,
                    reset=params.get("reset") == "1",
                    offset=None if offset is None else int(offset),
                    front=front,
                )
            else:
                msg = json.loads(body or b"{}")
                ok = self.broker.heartbeat(
                    msg.get("lease_id", ""), front=front
                )
            self._json(200 if ok else 410, {"ok": ok})
        elif path == "/complete":
            try:
                status = self.broker.complete(
                    params.get("task_id", ""),
                    body,
                    lease_id=params.get("lease_id"),
                    worker=params.get("worker", ""),
                    exec_s=float(params.get("exec_s", 0.0)),
                )
            except KeyError:
                self._json(
                    404,
                    {"error": f"unknown task {params.get('task_id')!r}"},
                )
                return
            self._json(200, {"status": status})
        elif path == "/reconnect":
            msg = json.loads(body or b"{}")
            self.broker.reconnect(
                msg.get("worker", "?"),
                int(msg.get("failures", 0)),
                float(msg.get("outage_s", 0.0)),
            )
            self._json(200, {"ok": True})
        elif path == "/shutdown":
            self._json(200, {"ok": True})
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()
        else:
            self._json(404, {"error": f"no route {path!r}"})


class BrokerServer(ThreadingHTTPServer):
    """The HTTP face of one :class:`FleetBroker`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address,
        broker: FleetBroker,
        verbose: bool = False,
        port_file: str | Path | None = None,
    ):
        super().__init__(address, _Handler)
        self.broker = broker
        self.verbose = verbose
        self.port_file = Path(port_file) if port_file else None
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def track_inflight(self):
        """Context manager counting requests for the shutdown drain."""
        server = self

        class _Track:
            def __enter__(self):
                with server._inflight_lock:
                    server._inflight += 1

            def __exit__(self, *exc_info):
                with server._inflight_lock:
                    server._inflight -= 1

        return _Track()

    def graceful_close(self, drain_s: float = 2.0) -> None:
        """Drain in-flight handlers, journal the shutdown, fsync the
        WAL tail, and remove the port file."""
        deadline = time.monotonic() + drain_s
        while time.monotonic() < deadline:
            with self._inflight_lock:
                if self._inflight == 0:
                    break
            time.sleep(0.02)
        self.broker.close(shutdown=True)
        if self.port_file is not None:
            self.port_file.unlink(missing_ok=True)


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    log_dir: str | Path | None = None,
    verbose: bool = False,
    state_dir: str | Path | None = None,
    auth_key: bytes | None = None,
    port_file: str | Path | None = None,
    compact_bytes: int | None = None,
    trace_file: str | Path | None = None,
) -> BrokerServer:
    """Build a serving-ready broker (caller runs ``serve_forever``).

    ``state_dir`` both persists and rehydrates (and compacts) the WAL;
    plain ``log_dir`` keeps the PR-8 behavior — the journal is written
    for the monitor, never read back or compacted.  ``trace_file``
    records request spans for the merged Perfetto timeline.
    """
    log_path = (
        Path(log_dir) / "broker.fleet.jsonl" if log_dir is not None else None
    )
    broker = FleetBroker(
        lease_ttl_s=lease_ttl_s,
        log_path=log_path,
        state_dir=state_dir,
        auth_key=auth_key,
        compact_bytes=compact_bytes,
        trace_path=trace_file,
    )
    return BrokerServer(
        (host, port), broker, verbose=verbose, port_file=port_file
    )


def _termination_guard():
    """``terminate_on_signals`` when the full runtime is importable,
    else a stdlib fallback — the broker must run without numpy."""
    try:
        import signal

        from repro.core.resilience.signals import terminate_on_signals

        return terminate_on_signals((signal.SIGTERM, signal.SIGINT))
    except ImportError:
        import contextlib
        import signal

        @contextlib.contextmanager
        def _fallback():
            def _raise(signum, frame):
                raise SystemExit(128 + signum)

            old = {
                s: signal.signal(s, _raise)
                for s in (signal.SIGTERM, signal.SIGINT)
            }
            try:
                yield
            finally:
                for s, handler in old.items():
                    signal.signal(s, handler)

        return _fallback()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.broker",
        description="Work-queue broker for the distributed tuning fleet.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8947,
        help="TCP port (0 picks a free one; see --port-file)",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=DEFAULT_LEASE_TTL_S,
        help="seconds a lease survives without a heartbeat "
             f"(default {DEFAULT_LEASE_TTL_S:g})",
    )
    parser.add_argument(
        "--state-dir", default="",
        help="persist broker.fleet.jsonl as a write-ahead journal here "
             "and rehydrate from it on startup (crash-safe restarts)",
    )
    parser.add_argument(
        "--log-dir", default="",
        help="write broker.fleet.jsonl state transitions here without "
             "rehydration (the monitor's fleet dashboard input); "
             "ignored when --state-dir is set",
    )
    parser.add_argument(
        "--compact-bytes", type=int, default=-1,
        help="rewrite the --state-dir journal as one snapshot once it "
             f"exceeds this many bytes (default {DEFAULT_COMPACT_BYTES}; "
             "0 disables compaction)",
    )
    parser.add_argument(
        "--auth-key-file", default="",
        help="shared HMAC key file; requests without a valid "
             "X-Repro-Auth header are rejected with 401 "
             "(falls back to $REPRO_FLEET_AUTH_KEY[_FILE])",
    )
    parser.add_argument(
        "--port-file", default="",
        help="write the bound port number to this file once listening "
             "(removed again on graceful shutdown)",
    )
    parser.add_argument(
        "--trace-file", default="",
        help="record broker request spans (schema-v7 JSONL) here for "
             "the merged cross-process Perfetto timeline",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    server = serve(
        host=args.host,
        port=args.port,
        lease_ttl_s=args.lease_ttl,
        log_dir=args.log_dir or None,
        state_dir=args.state_dir or None,
        auth_key=load_auth_key(args.auth_key_file or None),
        verbose=args.verbose,
        port_file=args.port_file or None,
        compact_bytes=None if args.compact_bytes < 0 else args.compact_bytes,
        trace_file=args.trace_file or None,
    )
    if server.port_file is not None:
        server.port_file.write_text(str(server.server_address[1]))
    print(f"fleet broker listening on {server.url}", flush=True)
    try:
        with _termination_guard():
            server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        server.graceful_close()
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
