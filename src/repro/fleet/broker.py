"""Stdlib-only work-queue broker for the tuning fleet.

::

    python -m repro.fleet.broker [--host 127.0.0.1] [--port 8947]
        [--lease-ttl 30] [--log-dir DIR] [--port-file PATH]

The broker holds **named job queues** of opaque pickled payloads (it
never unpickles them — it is pure stdlib and runs anywhere, like the
monitor).  Workers register with capabilities, then repeatedly *lease*
a task: a lease grants exclusive execution rights for ``lease_ttl_s``
seconds, renewable by heartbeat.  A worker that vanishes — SIGKILL,
OOM, power loss — simply stops heartbeating; the lease expires and the
task is re-queued for the next worker.  Because every task in this
system re-executes bitwise-identically (deterministic flows, seeded
methods, journaled cells), a lost worker costs one lease timeout, not
a run.

**Lease state machine** (per task)::

    queued --lease--> leased --complete--> done
      ^                  |
      +---- expire <-----+   (deadline passes without heartbeat)

**Failure semantics.**  Completion is *first-writer-wins*: the first
outcome recorded for a task is kept, any later completion (a stale
leaseholder racing its re-issued replacement) is acknowledged and
dropped as a ``duplicate`` — never double-committed downstream, and
harmless anyway since re-execution produces identical bytes.  A
completion from an expired lease is accepted when the task has not
finished elsewhere: the work is done and the bytes are right.

**Fair share.**  When several queues (one per tuning session) hold
work, a lease request is served from the queue with the fewest leases
currently in flight, ties broken round-robin by least-recently-served
— so ``N`` concurrent sessions on ``W`` workers each hold ``~W/N``
leases regardless of submission order or queue depth.

Every state transition is appended as one JSON line to
``<log-dir>/broker.fleet.jsonl`` — the fleet dashboard input of
:mod:`repro.obs.monitor`.
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.fleet.wire import WIRE_HEADER, wire_fingerprint

__all__ = [
    "FleetBroker",
    "BrokerServer",
    "Task",
    "WorkerInfo",
    "main",
]

#: Default lease TTL: generous against multi-second flow evaluations,
#: short enough that a dead worker's cell is re-issued promptly.
DEFAULT_LEASE_TTL_S = 30.0

QUEUED = "queued"
LEASED = "leased"
DONE = "done"


@dataclass
class Task:
    """One unit of queued work (payload opaque to the broker)."""

    task_id: str
    queue: str
    payload: bytes
    seq: int
    state: str = QUEUED
    attempts: int = 0
    expiries: int = 0
    lease_id: str | None = None
    worker: str | None = None
    deadline: float | None = None  # monotonic
    result: bytes | None = None
    completed_by: str | None = None
    exec_s: float = 0.0


@dataclass
class WorkerInfo:
    """One registered worker and its advertised capabilities."""

    worker_id: str
    capabilities: dict = field(default_factory=dict)
    leases_taken: int = 0
    completed: int = 0
    expired: int = 0
    busy_s: float = 0.0


class FleetBroker:
    """The queue/lease state machine (transport-free, fully locked).

    ``clock`` is injectable (monotonic seconds) so tests drive lease
    expiry deterministically without sleeping.
    """

    def __init__(
        self,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        log_path: str | Path | None = None,
        clock=time.monotonic,
    ):
        self.lease_ttl_s = float(lease_ttl_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._queues: dict[str, deque[str]] = {}
        self._tasks: dict[str, Task] = {}
        self._leases: dict[str, str] = {}  # lease_id -> task_id
        self._workers: dict[str, WorkerInfo] = {}
        self._active: dict[str, int] = {}  # queue -> leases in flight
        self._served: dict[str, int] = {}  # queue -> last-served tick
        self._seq = itertools.count()
        self._tick = itertools.count()
        self.duplicates = 0
        self.expiries = 0
        self._log_handle = None
        if log_path is not None:
            log_path = Path(log_path)
            log_path.parent.mkdir(parents=True, exist_ok=True)
            self._log_handle = log_path.open("a", encoding="utf-8")

    # ------------------------------------------------------------------
    # fleet log
    # ------------------------------------------------------------------

    def _log(self, event: str, **fields) -> None:
        """One JSON line per state transition (lock held by callers)."""
        if self._log_handle is None:
            return
        record = {"event": event, "t": time.time(), **fields}
        self._log_handle.write(json.dumps(record) + "\n")
        self._log_handle.flush()

    # ------------------------------------------------------------------
    # lease expiry
    # ------------------------------------------------------------------

    def _expire_leases(self, now: float) -> None:
        """Re-queue every leased task whose deadline passed (lock held).

        Expired tasks go to the *front* of their queue so a re-issued
        cell does not wait behind the whole backlog it already waited
        through once.
        """
        for lease_id in [
            lid
            for lid, tid in self._leases.items()
            if self._tasks[tid].deadline is not None
            and self._tasks[tid].deadline < now
        ]:
            task = self._tasks[self._leases.pop(lease_id)]
            self.expiries += 1
            task.expiries += 1
            self._active[task.queue] -= 1
            if task.worker in self._workers:
                self._workers[task.worker].expired += 1
            self._log(
                "expire",
                queue=task.queue,
                task=task.task_id,
                worker=task.worker,
                attempts=task.attempts,
            )
            task.state = QUEUED
            task.lease_id = None
            task.worker = None
            task.deadline = None
            self._queues[task.queue].appendleft(task.task_id)

    # ------------------------------------------------------------------
    # public API (each entry point sweeps expired leases first)
    # ------------------------------------------------------------------

    def register(self, worker_id: str, capabilities: dict | None = None) -> dict:
        with self._lock:
            self._workers[worker_id] = WorkerInfo(
                worker_id=worker_id, capabilities=dict(capabilities or {})
            )
            self._log(
                "register", worker=worker_id,
                capabilities=dict(capabilities or {}),
            )
            return {"lease_ttl_s": self.lease_ttl_s}

    def create_queue(self, queue: str) -> None:
        with self._lock:
            if queue not in self._queues:
                self._queues[queue] = deque()
                self._active[queue] = 0
                self._served[queue] = -1
                self._log("queue", queue=queue)

    def submit(self, queue: str, payload: bytes) -> str:
        task_id = uuid.uuid4().hex
        with self._lock:
            if queue not in self._queues:
                self._queues[queue] = deque()
                self._active[queue] = 0
                self._served[queue] = -1
                self._log("queue", queue=queue)
            task = Task(
                task_id=task_id, queue=queue, payload=payload,
                seq=next(self._seq),
            )
            self._tasks[task_id] = task
            self._queues[queue].append(task_id)
            self._log("submit", queue=queue, task=task_id)
        return task_id

    def _pick_queue(self, allowed: set[str] | None) -> str | None:
        """Fair-share queue choice (lock held): fewest in-flight leases
        first, least-recently-served breaking ties."""
        candidates = [
            q
            for q, pending in self._queues.items()
            if pending and (allowed is None or q in allowed)
        ]
        if not candidates:
            return None
        return min(
            candidates, key=lambda q: (self._active[q], self._served[q])
        )

    def lease(
        self, worker_id: str, queues: list[str] | None = None
    ) -> dict | None:
        """Grant one task to ``worker_id``, or ``None`` when idle.

        ``queues`` restricts the grant to the worker's capability set.
        Returns ``{task_id, lease_id, queue, ttl_s, payload, attempt}``.
        """
        now = self._clock()
        with self._lock:
            self._expire_leases(now)
            queue = self._pick_queue(set(queues) if queues else None)
            if queue is None:
                return None
            task = self._tasks[self._queues[queue].popleft()]
            lease_id = uuid.uuid4().hex
            task.state = LEASED
            task.lease_id = lease_id
            task.worker = worker_id
            task.deadline = now + self.lease_ttl_s
            task.attempts += 1
            self._leases[lease_id] = task.task_id
            self._active[queue] += 1
            self._served[queue] = next(self._tick)
            if worker_id in self._workers:
                self._workers[worker_id].leases_taken += 1
            self._log(
                "lease", queue=queue, task=task.task_id, worker=worker_id,
                attempt=task.attempts,
            )
            return {
                "task_id": task.task_id,
                "lease_id": lease_id,
                "queue": queue,
                "ttl_s": self.lease_ttl_s,
                "attempt": task.attempts,
                "payload": task.payload,
            }

    def heartbeat(self, lease_id: str) -> bool:
        """Renew one lease; ``False`` means it already expired (stop
        working — the task has been or will be re-issued)."""
        now = self._clock()
        with self._lock:
            self._expire_leases(now)
            task_id = self._leases.get(lease_id)
            if task_id is None:
                return False
            task = self._tasks[task_id]
            task.deadline = now + self.lease_ttl_s
            self._log(
                "renew", queue=task.queue, task=task_id, worker=task.worker
            )
            return True

    def complete(
        self,
        task_id: str,
        payload: bytes,
        lease_id: str | None = None,
        worker: str = "",
        exec_s: float = 0.0,
    ) -> str:
        """Record one outcome; first writer wins.

        Returns ``"accepted"`` or ``"duplicate"`` (outcome already
        recorded — the duplicate is dropped, never surfaced twice).
        An unknown ``task_id`` raises ``KeyError``.
        """
        now = self._clock()
        with self._lock:
            self._expire_leases(now)
            task = self._tasks[task_id]
            if task.state == DONE:
                self.duplicates += 1
                self._log(
                    "complete", queue=task.queue, task=task_id,
                    worker=worker, status="duplicate", exec_s=exec_s,
                )
                return "duplicate"
            if task.state == LEASED and task.lease_id is not None:
                self._leases.pop(task.lease_id, None)
                self._active[task.queue] -= 1
            elif task.state == QUEUED:
                # Stale leaseholder finished after expiry but before the
                # re-issue was granted: accept the bytes, drop the
                # queue entry so the task is never re-leased.
                try:
                    self._queues[task.queue].remove(task_id)
                except ValueError:
                    pass
            task.state = DONE
            task.result = payload
            task.completed_by = worker
            task.exec_s = float(exec_s)
            task.lease_id = None
            task.deadline = None
            if worker in self._workers:
                self._workers[worker].completed += 1
                self._workers[worker].busy_s += float(exec_s)
            self._log(
                "complete", queue=task.queue, task=task_id, worker=worker,
                status="accepted", exec_s=exec_s,
            )
            return "accepted"

    def result(self, task_id: str) -> tuple[str, bytes | None]:
        """``(state, outcome_bytes_or_None)`` for one task."""
        with self._lock:
            self._expire_leases(self._clock())
            task = self._tasks[task_id]
            return task.state, task.result

    def stats(self) -> dict:
        """JSON-able snapshot for dashboards and tests."""
        with self._lock:
            self._expire_leases(self._clock())
            return {
                "lease_ttl_s": self.lease_ttl_s,
                "queues": {
                    q: {
                        "queued": len(pending),
                        "leased": self._active[q],
                        "done": sum(
                            1
                            for t in self._tasks.values()
                            if t.queue == q and t.state == DONE
                        ),
                        "submitted": sum(
                            1 for t in self._tasks.values() if t.queue == q
                        ),
                    }
                    for q, pending in self._queues.items()
                },
                "workers": {
                    w.worker_id: {
                        "capabilities": w.capabilities,
                        "leases_taken": w.leases_taken,
                        "completed": w.completed,
                        "expired": w.expired,
                        "busy_s": w.busy_s,
                        "active": [
                            t.task_id
                            for t in self._tasks.values()
                            if t.state == LEASED
                            and t.worker == w.worker_id
                        ],
                    }
                    for w in self._workers.values()
                },
                "expiries": self.expiries,
                "duplicates": self.duplicates,
                "tasks": len(self._tasks),
                "done": sum(
                    1 for t in self._tasks.values() if t.state == DONE
                ),
            }

    def close(self) -> None:
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the :class:`FleetBroker` state machine.

    Control data travels as JSON; task payloads/outcomes as raw pickle
    bytes (``application/octet-stream``) the broker never inspects.
    Every request must carry the wire fingerprint header — a mismatched
    peer (version skew) is rejected with ``409`` before any payload is
    touched.
    """

    protocol_version = "HTTP/1.1"
    server_version = "repro-fleet-broker"

    def log_message(self, fmt, *args):  # quiet by default
        if self.server.verbose:  # type: ignore[attr-defined]
            sys.stderr.write(
                f"{self.address_string()} - {fmt % args}\n"
            )

    # -- helpers -------------------------------------------------------

    @property
    def broker(self) -> FleetBroker:
        return self.server.broker  # type: ignore[attr-defined]

    def _body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _send(self, code: int, body: bytes, ctype: str, **extra) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        for key, value in extra.items():
            self.send_header(key.replace("_", "-"), str(value))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, code: int, obj: dict, **extra) -> None:
        self._send(
            code, json.dumps(obj).encode(), "application/json", **extra
        )

    def _check_wire(self) -> bool:
        got = self.headers.get(WIRE_HEADER)
        want = wire_fingerprint()
        if got != want:
            self._json(
                409,
                {
                    "error": "wire fingerprint mismatch",
                    "want": want,
                    "got": got,
                },
            )
            return False
        return True

    # -- routes --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path, _, query = self.path.partition("?")
        params = dict(
            part.split("=", 1) for part in query.split("&") if "=" in part
        )
        if path == "/stats":
            self._json(200, self.broker.stats())
        elif path == "/health":
            self._json(200, {"ok": True, "wire": wire_fingerprint()})
        elif path == "/result":
            if not self._check_wire():
                return
            task_id = params.get("task_id", "")
            try:
                state, payload = self.broker.result(task_id)
            except KeyError:
                self._json(404, {"error": f"unknown task {task_id!r}"})
                return
            if payload is None:
                self._json(202, {"state": state})
            else:
                self._send(
                    200, payload, "application/octet-stream", X_State=state
                )
        else:
            self._json(404, {"error": f"no route {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path, _, query = self.path.partition("?")
        params = dict(
            part.split("=", 1) for part in query.split("&") if "=" in part
        )
        if not self._check_wire():
            return
        body = self._body()
        if path == "/register":
            msg = json.loads(body or b"{}")
            ack = self.broker.register(
                msg.get("worker_id", "?"), msg.get("capabilities") or {}
            )
            self._json(200, ack)
        elif path == "/queues":
            msg = json.loads(body or b"{}")
            self.broker.create_queue(msg["queue"])
            self._json(200, {"ok": True})
        elif path == "/submit":
            task_id = self.broker.submit(params.get("queue", "default"), body)
            self._json(200, {"task_id": task_id})
        elif path == "/lease":
            msg = json.loads(body or b"{}")
            grant = self.broker.lease(
                msg.get("worker_id", "?"), msg.get("queues")
            )
            if grant is None:
                # 200 + JSON (not 204): an empty-body status code is
                # awkward through keep-alive http.client connections.
                self._json(200, {"task_id": None})
            else:
                payload = grant.pop("payload")
                self._send(
                    200,
                    payload,
                    "application/octet-stream",
                    X_Task_Id=grant["task_id"],
                    X_Lease_Id=grant["lease_id"],
                    X_Queue=grant["queue"],
                    X_Lease_Ttl=grant["ttl_s"],
                    X_Attempt=grant["attempt"],
                )
        elif path == "/heartbeat":
            msg = json.loads(body or b"{}")
            ok = self.broker.heartbeat(msg.get("lease_id", ""))
            self._json(200 if ok else 410, {"ok": ok})
        elif path == "/complete":
            try:
                status = self.broker.complete(
                    params.get("task_id", ""),
                    body,
                    lease_id=params.get("lease_id"),
                    worker=params.get("worker", ""),
                    exec_s=float(params.get("exec_s", 0.0)),
                )
            except KeyError:
                self._json(
                    404,
                    {"error": f"unknown task {params.get('task_id')!r}"},
                )
                return
            self._json(200, {"status": status})
        elif path == "/shutdown":
            self._json(200, {"ok": True})
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()
        else:
            self._json(404, {"error": f"no route {path!r}"})


class BrokerServer(ThreadingHTTPServer):
    """The HTTP face of one :class:`FleetBroker`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, broker: FleetBroker, verbose: bool = False):
        super().__init__(address, _Handler)
        self.broker = broker
        self.verbose = verbose

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    log_dir: str | Path | None = None,
    verbose: bool = False,
) -> BrokerServer:
    """Build a serving-ready broker (caller runs ``serve_forever``)."""
    log_path = (
        Path(log_dir) / "broker.fleet.jsonl" if log_dir is not None else None
    )
    broker = FleetBroker(lease_ttl_s=lease_ttl_s, log_path=log_path)
    return BrokerServer((host, port), broker, verbose=verbose)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.broker",
        description="Work-queue broker for the distributed tuning fleet.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8947,
        help="TCP port (0 picks a free one; see --port-file)",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=DEFAULT_LEASE_TTL_S,
        help="seconds a lease survives without a heartbeat "
             f"(default {DEFAULT_LEASE_TTL_S:g})",
    )
    parser.add_argument(
        "--log-dir", default="",
        help="write broker.fleet.jsonl state transitions here "
             "(the monitor's fleet dashboard input)",
    )
    parser.add_argument(
        "--port-file", default="",
        help="write the bound port number to this file once listening",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    server = serve(
        host=args.host,
        port=args.port,
        lease_ttl_s=args.lease_ttl,
        log_dir=args.log_dir or None,
        verbose=args.verbose,
    )
    if args.port_file:
        Path(args.port_file).write_text(str(server.server_address[1]))
    print(f"fleet broker listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.broker.close()
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
