"""Distributed tuning fleet: broker, workers, scheduler.

The fleet takes both fan-out layers of the runtime off the single box:

- :mod:`repro.fleet.broker` — a stdlib-only work-queue broker
  (``python -m repro.fleet.broker``): named job queues, worker
  registration with capabilities, heartbeat-renewed lease TTLs, and
  re-issue of expired leases.  A SIGKILL'd worker costs one lease
  timeout, not a run — re-execution is bitwise-safe by construction.
- :mod:`repro.fleet.worker` — the worker agent
  (``python -m repro.fleet.worker``): leases tasks, runs experiment
  cells through the same :func:`repro.experiments.parallel._invoke`
  wrapper the process pool uses, and in-run flow evaluations through
  the same retry policy / deterministic jitter stream
  :class:`repro.core.batch.engine.EvalEngine` uses, then streams the
  pickled outcome back.
- :mod:`repro.fleet.executor` — :class:`RemoteExecutor`, a drop-in for
  the in-run :class:`~repro.core.batch.engine.EvalEngine` (same
  submit/wait/close contract), so ``run_batch_loop`` and
  ``run_async_loop`` evaluate on the fleet while the proposal-order /
  modeled-commit model keeps trajectories bitwise identical to local
  runs.
- :mod:`repro.fleet.schedule` — the multi-session scheduler
  (``python -m repro.fleet.schedule``): multiplexes many concurrent
  tuning sessions over one fleet (fair-share lease dispatch lives in
  the broker) over a shared, sharded ground-truth cache.

Everything speaks the pickle wire format of :mod:`repro.fleet.wire`;
version skew between broker and workers fails loudly at registration
instead of corrupting a sweep.
"""

from __future__ import annotations

__all__ = [
    "BrokerClient",
    "FleetBroker",
    "FleetWorker",
    "RemoteExecutor",
    "SessionSpec",
    "WalWriter",
    "read_wal",
]

# Lazy exports (PEP 562): the broker/monitor side must stay importable
# without numpy/scipy; the worker/executor side pulls the full runtime.
_LAZY_EXPORTS = {
    "BrokerClient": ("repro.fleet.client", "BrokerClient"),
    "FleetBroker": ("repro.fleet.broker", "FleetBroker"),
    "FleetWorker": ("repro.fleet.worker", "FleetWorker"),
    "RemoteExecutor": ("repro.fleet.executor", "RemoteExecutor"),
    "SessionSpec": ("repro.fleet.schedule", "SessionSpec"),
    "WalWriter": ("repro.fleet.wal", "WalWriter"),
    "read_wal": ("repro.fleet.wal", "read_wal"),
}


def __getattr__(name: str):
    if name in _LAZY_EXPORTS:
        import importlib

        module, attr = _LAZY_EXPORTS[name]
        value = getattr(importlib.import_module(module), attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
