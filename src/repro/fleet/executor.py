"""RemoteExecutor: the in-run evaluation fan-out, off the box.

:class:`RemoteExecutor` satisfies the same ``submit``/``wait``/
``evaluate``/``close`` contract as :class:`repro.core.batch.engine.
EvalEngine`, so both engine loops (:func:`run_batch_loop` and
:func:`run_async_loop`) accept it unchanged through the optimizer's
``engine_factory`` hook::

    from repro.fleet.executor import RemoteExecutor

    opt = CorrelatedMFBO(
        space, flow, settings=settings,
        engine_factory=lambda opt: RemoteExecutor(
            opt, "http://broker:8947", benchmark="gemm"
        ),
    )

Trajectory bitwise-parity with local runs holds by construction:

- the proposal order / modeled-commit model never consults wall time,
  so *where* an evaluation ran cannot reach the trajectory — only its
  :class:`ResilientOutcome` can;
- the worker reproduces the outcome exactly: the same flow model
  (deterministic per configuration), the same retry policy, and the
  same per-job jitter stream keyed by ``(seed, step, config_index)``;
- outcomes are folded in proposal/modeled order, exactly as with the
  local thread pool.

``close()`` leaves nothing orphaned: unfinished remote tasks keep
running on their workers and complete into the broker's result store,
but this session stops polling them.
"""

from __future__ import annotations

import time
import uuid

from repro.core.batch.engine import EvalJob, EvalOutcome
from repro.fleet.client import BrokerClient
from repro.fleet.wire import dump, load
from repro.hlsim.reports import ALL_FIDELITIES

__all__ = ["RemoteExecutor"]


class RemoteExecutor:
    """Ship :class:`EvalJob`\\ s to a fleet broker; poll outcomes back.

    Built either from an optimizer (``RemoteExecutor(opt, url,
    benchmark=...)`` — takes seed and retry policy from it) or
    explicitly via keyword arguments.  Each executor owns one
    session-scoped queue (``eval.<benchmark>.<uuid>``) so concurrent
    tuning sessions on one broker never steal each other's leases and
    the broker's fair-share dispatch balances across them.
    """

    def __init__(
        self,
        opt=None,
        broker_url: str = "",
        benchmark: str = "",
        seed: int | None = None,
        retry_policy=None,
        queue: str | None = None,
        poll_s: float = 0.02,
        result_timeout_s: float | None = None,
        auth_key: bytes | None = None,
        transport=None,
    ):
        if opt is not None:
            seed = opt.settings.seed if seed is None else seed
            retry_policy = retry_policy or opt._retry_policy
        if not broker_url:
            raise ValueError("RemoteExecutor needs a broker URL")
        if not benchmark:
            raise ValueError(
                "RemoteExecutor needs the benchmark name its workers "
                "should build the evaluation context from"
            )
        self.client = BrokerClient(
            broker_url,
            auth_key=auth_key,
            transport=transport,
            identity=f"executor.{benchmark}",
        )
        self.benchmark = benchmark
        self.seed = int(seed or 0)
        self.retry_policy = retry_policy
        self.poll_s = poll_s
        self.result_timeout_s = result_timeout_s
        self.queue = queue or f"eval.{benchmark}.{uuid.uuid4().hex[:8]}"
        self.client.create_queue(self.queue)
        self._submitted: dict[int, float] = {}  # step -> submit time
        self._in_flight: dict = {f: 0 for f in ALL_FIDELITIES}
        self._closed = False

    # ------------------------------------------------------------------
    # EvalEngine contract
    # ------------------------------------------------------------------

    def in_flight_snapshot(self) -> dict[str, int]:
        return {
            f.short_name: self._in_flight[f] for f in ALL_FIDELITIES
        }

    def submit(self, job: EvalJob) -> str:
        """Queue one evaluation on the fleet; the handle is the task id."""
        if self._closed:
            raise RuntimeError("RemoteExecutor is closed")
        payload = dump(
            {
                "kind": "eval",
                "benchmark": self.benchmark,
                "job": job,
                "seed": self.seed,
                "retry_policy": self.retry_policy,
            }
        )
        task_id = self.client.submit(self.queue, payload)
        self._submitted[job.step] = time.perf_counter()
        self._in_flight[job.fidelity] += 1
        return task_id

    def wait(self, job: EvalJob, handle: str) -> EvalOutcome:
        """Block (polling) until the fleet lands this job's outcome."""
        payload = self.client.wait_result(
            handle, poll_s=self.poll_s, timeout_s=self.result_timeout_s
        )
        self._in_flight[job.fidelity] -= 1
        submitted = self._submitted.pop(job.step, None)
        result = load(payload)
        if isinstance(result, dict):  # agent-level crash, not eval-level
            return EvalOutcome(
                job=job,
                outcome=None,
                error=result.get("error", "fleet worker failed"),
                queue_wait_s=0.0,
                exec_s=0.0,
                worker=result.get("worker", "?"),
            )
        if submitted is not None:
            # Round-trip latency minus on-worker time = queue wait.
            total = time.perf_counter() - submitted
            result.queue_wait_s = max(0.0, total - result.exec_s)
        return result

    def evaluate(self, jobs: list[EvalJob]) -> list[EvalOutcome]:
        """Run ``jobs`` fleet-wide; outcomes in proposal order."""
        handles = [self.submit(job) for job in jobs]
        return [
            self.wait(job, handle) for job, handle in zip(jobs, handles)
        ]

    def close(self, drain_s: float | None = None) -> None:
        """Stop polling; in-flight remote work finishes server-side."""
        self._closed = True

    def __enter__(self) -> "RemoteExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
