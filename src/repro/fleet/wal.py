"""Write-ahead log for the fleet broker: fsync'd, torn-tail tolerant.

The broker's ``broker.fleet.jsonl`` is not just a dashboard feed — it
is the broker's *only* durable state.  Every queue/lease/completion
transition is appended as one JSON line (monotonic ``seq``, wall-clock
``t``) and fsync'd before the HTTP response leaves, so a SIGKILL'd
broker restarted with ``--state-dir`` replays the log and comes back
with queues, leases (TTL clocks resumed against wall time) and
completed results intact.

Crash semantics mirror :func:`repro.core.resilience.journal.
read_journal`: each append is a single flushed+fsync'd write, so a
crash can only tear the *final* line — :func:`read_wal` silently drops
a torn tail (that transition's HTTP response never left, so the caller
retries it), while garbage before the last line means the file was
damaged outside a normal crash and raises :class:`WalError`.

Stdlib-only on purpose: the broker imports nothing heavier than
:mod:`repro.fleet.wire`, and the monitor tails the same file with its
own parser.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Any

__all__ = ["WalError", "WalWriter", "read_wal", "recover_wal"]


class WalError(ValueError):
    """The WAL cannot seed a rehydration (mid-file corruption)."""


def read_wal(path: str | Path) -> list[dict[str, Any]]:
    """All parseable records; a torn trailing line is silently dropped.

    A torn tail is the normal signature of a crash mid-append — the
    transition it recorded never acknowledged, so dropping it restores
    the exact pre-write state.  Corruption *before* the last line is an
    error: single-writer fsync'd appends cannot produce it.
    """
    return recover_wal(path)[0]


def recover_wal(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """``(records, valid_bytes)`` — the parseable prefix and its length.

    ``valid_bytes`` is the byte offset just past the last *complete*
    record: a rehydrating broker truncates the file there before
    reopening it for append, so a torn tail never becomes mid-file
    garbage for the next restart.
    """
    records: list[dict[str, Any]] = []
    valid = 0
    with Path(path).open("rb") as handle:
        lines = handle.readlines()
    for i, raw in enumerate(lines):
        line = raw.strip()
        if not line:
            valid += len(raw)
            continue
        try:
            records.append(json.loads(line))
        except (json.JSONDecodeError, UnicodeDecodeError):
            if i == len(lines) - 1:
                break  # torn tail from a mid-append crash
            raise WalError(
                f"{path}: corrupt WAL line {i + 1} (not last — the file "
                "was damaged outside a normal crash)"
            ) from None
        if not raw.endswith(b"\n"):
            # Parseable but unterminated final line: the fsync never
            # finished, so treat it as torn too — drop it.
            records.pop()
            break
        valid += len(raw)
    return records, valid


class WalWriter:
    """Append-only JSONL writer: one fsync'd record per transition.

    ``start_seq`` continues a rehydrated log's sequence numbering so
    ``seq`` stays strictly monotonic across broker restarts.
    """

    def __init__(self, path: str | Path, start_seq: int = 0):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = self.path.open("a", encoding="utf-8")
        self.seq = int(start_seq)

    def append(self, record: dict[str, Any]) -> int:
        """Write one record (``seq`` assigned here); returns its seq."""
        if self._handle is None:
            raise RuntimeError(f"WAL {self.path} is closed")
        seq = self.seq
        self._handle.write(
            json.dumps({"seq": seq, **record}, sort_keys=False) + "\n"
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.seq = seq + 1
        return seq

    def close(self) -> None:
        """Flush, fsync and close — the graceful-shutdown tail sync."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
