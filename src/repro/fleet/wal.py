"""Write-ahead log for the fleet broker: fsync'd, torn-tail tolerant.

The broker's ``broker.fleet.jsonl`` is not just a dashboard feed — it
is the broker's *only* durable state.  Every queue/lease/completion
transition is appended as one JSON line (monotonic ``seq``, wall-clock
``t``) and fsync'd before the HTTP response leaves, so a SIGKILL'd
broker restarted with ``--state-dir`` replays the log and comes back
with queues, leases (TTL clocks resumed against wall time) and
completed results intact.

Crash semantics mirror :func:`repro.core.resilience.journal.
read_journal`: each append is a single flushed+fsync'd write, so a
crash can only tear the *final* line — :func:`scan_wal` silently drops
a torn tail (that transition's HTTP response never left, so the caller
retries it), while garbage before the last line means the file was
damaged outside a normal crash and raises :class:`WalError`.

**Bounded growth.**  Recovery streams the file one line at a time
(:func:`scan_wal` is a generator — memory is bounded by the live
state, not the log length), and :meth:`WalWriter.rotate` atomically
replaces the log with a compact snapshot while the ``seq`` numbering
continues — the broker calls it when the log outgrows its compaction
threshold, so payload-bearing records never accumulate without bound.

Stdlib-only on purpose: the broker imports nothing heavier than
:mod:`repro.fleet.wire`, and the monitor tails the same file with its
own parser (which already re-reads a file that shrinks under it).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import IO, Any, Iterator

__all__ = ["WalError", "WalWriter", "read_wal", "recover_wal", "scan_wal"]


class WalError(ValueError):
    """The WAL cannot seed a rehydration (mid-file corruption)."""


def read_wal(path: str | Path) -> list[dict[str, Any]]:
    """All parseable records; a torn trailing line is silently dropped.

    A torn tail is the normal signature of a crash mid-append — the
    transition it recorded never acknowledged, so dropping it restores
    the exact pre-write state.  Corruption *before* the last line is an
    error: single-writer fsync'd appends cannot produce it.
    """
    return recover_wal(path)[0]


def scan_wal(path: str | Path) -> Iterator[tuple[dict[str, Any], int]]:
    """Yield ``(record, valid_bytes)`` per complete record, streaming.

    ``valid_bytes`` is the byte offset just past that record: a
    rehydrating broker applies each record as it arrives (never holding
    the whole log in memory) and truncates the file at the last yielded
    offset, so a torn tail never becomes mid-file garbage for the next
    restart.  A parse failure on any line but the last raises
    :class:`WalError`; on the last line it is the torn tail and the
    iteration simply ends.
    """
    offset = 0
    bad_line: int | None = None
    with Path(path).open("rb") as handle:
        for i, raw in enumerate(handle):
            if bad_line is not None:
                raise WalError(
                    f"{path}: corrupt WAL line {bad_line} (not last — the "
                    "file was damaged outside a normal crash)"
                )
            line = raw.strip()
            if not line:
                offset += len(raw)
                continue
            try:
                record = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                bad_line = i + 1  # torn tail unless another line follows
                continue
            if not raw.endswith(b"\n"):
                # Parseable but unterminated final line: the fsync never
                # finished, so treat it as torn too — drop it.
                break
            offset += len(raw)
            yield record, offset


def recover_wal(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """``(records, valid_bytes)`` — the parseable prefix and its length.

    Convenience wrapper over :func:`scan_wal` for callers that want the
    whole prefix at once (tests, tooling); the broker itself streams.
    """
    records: list[dict[str, Any]] = []
    valid = 0
    for record, valid in scan_wal(path):
        records.append(record)
    return records, valid


class WalWriter:
    """Append-only JSONL writer: one fsync'd record per transition.

    ``start_seq`` continues a rehydrated log's sequence numbering so
    ``seq`` stays strictly monotonic across broker restarts; ``bytes``
    tracks the current file size so the broker can trigger compaction
    without a ``stat`` per append.

    ``observe_fsync`` (optional) is called with each append's fsync
    duration in seconds — the broker feeds its durability-tax
    histogram through it — and ``last_fsync_wall`` holds the wall time
    of the most recent completed fsync (``None`` before the first),
    surfaced by ``/healthz`` as ``last_wal_fsync_age_s``.
    """

    def __init__(
        self,
        path: str | Path,
        start_seq: int = 0,
        observe_fsync=None,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[bytes] | None = self.path.open("ab")
        self.seq = int(start_seq)
        self.bytes = self.path.stat().st_size
        self.observe_fsync = observe_fsync
        self.last_fsync_wall: float | None = None

    def _encode(self, record: dict[str, Any]) -> bytes:
        line = json.dumps({"seq": self.seq, **record}, sort_keys=False)
        self.seq += 1
        return line.encode("utf-8") + b"\n"

    def append(self, record: dict[str, Any]) -> int:
        """Write one record (``seq`` assigned here); returns its seq."""
        if self._handle is None:
            raise RuntimeError(f"WAL {self.path} is closed")
        seq = self.seq
        data = self._encode(record)
        self._handle.write(data)
        self._handle.flush()
        self._fsync(self._handle)
        self.bytes += len(data)
        return seq

    def _fsync(self, handle: IO[bytes]) -> None:
        start = time.perf_counter()
        os.fsync(handle.fileno())
        self.last_fsync_wall = time.time()
        if self.observe_fsync is not None:
            self.observe_fsync(time.perf_counter() - start)

    def rotate(self, records: list[dict[str, Any]]) -> None:
        """Atomically replace the log with ``records`` (compaction).

        The replacement is written and fsync'd to a sibling temp file,
        then renamed over the log (and the directory entry fsync'd), so
        a crash at any point leaves either the old log or the complete
        new one — never a mix.  ``seq`` keeps counting: the snapshot's
        records take the next numbers, and later appends follow them.
        """
        if self._handle is None:
            raise RuntimeError(f"WAL {self.path} is closed")
        tmp = self.path.with_name(self.path.name + ".compact")
        with tmp.open("wb") as out:
            for record in records:
                out.write(self._encode(record))
            out.flush()
            self._fsync(out)
        self._handle.close()
        os.replace(tmp, self.path)
        dir_fd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        self._handle = self.path.open("ab")
        self.bytes = self.path.stat().st_size

    def close(self) -> None:
        """Flush, fsync and close — the graceful-shutdown tail sync."""
        if self._handle is not None:
            self._handle.flush()
            self._fsync(self._handle)
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
