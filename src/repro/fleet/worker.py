"""Fleet worker agent: lease → execute → stream the outcome back.

::

    python -m repro.fleet.worker --broker http://HOST:PORT
        [--worker-id NAME] [--queues q1,q2] [--cache-dir DIR]
        [--journal-root DIR] [--auth-key-file PATH]
        [--poll 0.2] [--max-tasks N] [--exit-on-idle SECONDS]
        [--stream-interval SECONDS] [--broker-patience SECONDS]

The agent wraps the exact execution paths the single-box engines use,
so a fleet run is bitwise identical to a local one:

- ``kind == "cell"`` tasks carry a :class:`repro.experiments.parallel.
  Job` and run through the same :func:`repro.experiments.parallel.
  _invoke` wrapper the process pool uses — same seeds, same scoring,
  same :class:`JobOutcome` shape (including crash capture: a raising
  cell returns an outcome with ``error`` set, it never kills the
  agent).
- ``kind == "eval"`` tasks carry an in-run :class:`repro.core.batch.
  engine.EvalJob` plus the session's seed and retry policy, and run
  through :func:`repro.core.resilience.retry.evaluate_with_policy`
  with the **same deterministic backoff-jitter stream**
  (``_stable_seed("retry", seed, step, config_index)``) the local
  :class:`EvalEngine` derives — retry timing draws are identical no
  matter which machine picks the job up.  The per-benchmark flow is
  built once and cached (reports are deterministic per configuration).

While a task executes, a daemon heartbeat thread renews the lease
every ``ttl/3`` seconds; if the broker reports the lease gone (this
agent stalled past the TTL and the task was re-issued) the heartbeat
stops, the eventual completion is streamed anyway, and the broker's
first-writer-wins rule drops whichever copy lands second.

**Mid-cell resume.**  For journaled cells the heartbeat also tails the
cell's run journal and ships every new *complete* line to the broker
(offset-deduplicated, WAL-persisted there).  When a cell is re-issued
(``attempt > 1``) the replacement worker fetches the streamed prefix,
writes it to its own journal path, and runs the cell with
``resume=True`` — the optimizer's journal-v2 replay machinery then
replays the streamed commits instead of re-evaluating them, so a
SIGKILL'd worker costs one lease timeout plus only the *unstreamed*
tail of its cell.  ``--journal-root`` remaps cell journal dirs to a
worker-private directory, modeling separate machines (the only path
journal bytes can travel is through the broker).

**Broker outages.**  A worker never dies on ``ConnectionRefusedError``:
requests retry with deterministic-jitter backoff inside the client,
and the serve loop keeps polling through a continuous-failure window
of ``--broker-patience`` seconds (riding out broker restarts — a
rehydrated lease stays valid when the outage is shorter than its TTL)
before giving up.  Each survived outage is reported to the broker as a
``reconnect`` fleet-journal event.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import socket
import sys
import threading
import time
import traceback
from pathlib import Path

from repro.fleet.client import RETRIABLE, BrokerClient
from repro.fleet.wire import check_wire_schema, dump, load, load_auth_key

__all__ = ["FleetWorker", "main"]


class _JournalStream:
    """Tails one cell journal, yielding complete-line chunks to ship.

    ``offset`` is both the file position and the stream coordinate
    sent to the broker (the journal is append-only between rewrites).
    A file *shrink* means :func:`RunJournal.continue_from` rewrote it
    (resume compaction) — the stream restarts from zero with
    ``reset=True`` so the broker replaces its buffer.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.offset = 0

    def pending(self) -> tuple[bytes, bool, int]:
        """``(data, reset, start_offset)`` of unsent complete lines."""
        from repro.core.resilience.journal import tail_complete

        return tail_complete(self.path, self.offset)


class FleetWorker:
    """One leased-execution loop against a broker."""

    def __init__(
        self,
        broker_url: str,
        worker_id: str | None = None,
        queues: list[str] | None = None,
        cache_dir: str | None = None,
        poll_s: float = 0.2,
        max_tasks: int | None = None,
        exit_on_idle_s: float | None = None,
        auth_key: bytes | None = None,
        journal_root: str | None = None,
        stream_interval_s: float | None = None,
        broker_patience_s: float = 60.0,
        transport=None,
    ):
        self.worker_id = worker_id or (
            f"{socket.gethostname()}:{os.getpid()}"
        )
        self.client = BrokerClient(
            broker_url,
            auth_key=auth_key,
            transport=transport,
            identity=self.worker_id,
            on_reconnect=self._on_reconnect,
        )
        self.queues = queues
        self.cache_dir = cache_dir
        self.journal_root = journal_root
        self.poll_s = poll_s
        self.max_tasks = max_tasks
        self.exit_on_idle_s = exit_on_idle_s
        self.stream_interval_s = stream_interval_s
        self.broker_patience_s = float(broker_patience_s)
        self.tasks_done = 0
        self.reconnects = 0
        self._lease_ttl_s = 30.0
        self._flows: dict[str, tuple] = {}  # benchmark -> (space, flow)

    # ------------------------------------------------------------------
    # reconnect reporting
    # ------------------------------------------------------------------

    def _on_reconnect(self, failures: int, outage_s: float) -> None:
        self.reconnects += 1
        try:
            self.client.report_reconnect(self.worker_id, failures, outage_s)
        except Exception:
            pass  # the broker just came back; reporting is best-effort

    # ------------------------------------------------------------------
    # task execution
    # ------------------------------------------------------------------

    def _eval_context(self, benchmark: str):
        """Per-benchmark (space, flow), built once and reused."""
        ctx = self._flows.get(benchmark)
        if ctx is None:
            from repro.benchsuite.registry import get_space
            from repro.hlsim.flow import HlsFlow

            space = get_space(benchmark)
            ctx = (space, HlsFlow.for_space(space))
            self._flows[benchmark] = ctx
        return ctx

    def _prepare_cell(self, message: dict, grant) -> tuple[dict, Path | None]:
        """Rewrite one cell task for this worker; returns its journal path.

        Applies the ``--journal-root`` remap, and on a re-issued lease
        (``attempt > 1``) fetches the streamed journal prefix from the
        broker and runs the cell with ``resume=True`` so the replay
        machinery salvages every streamed commit.  A longer *local*
        journal (this worker re-leasing its own task) is kept as is.
        """
        job = message.get("job")
        if job is None:
            return message, None
        kwargs = dict(job.kwargs)
        if not kwargs.get("journal_dir"):
            return message, None
        if self.journal_root:
            kwargs["journal_dir"] = self.journal_root
        from repro.experiments.harness import journal_path_for

        journal_dir = Path(kwargs["journal_dir"])
        journal_dir.mkdir(parents=True, exist_ok=True)
        journal_path = journal_path_for(
            journal_dir, job.benchmark, job.method, kwargs["seed"]
        )
        if grant.attempt > 1:
            try:
                streamed, _commits = self.client.fetch_journal(
                    grant.task_id, grant=True
                )
            except Exception:
                streamed = b""
            local = (
                journal_path.stat().st_size if journal_path.exists() else 0
            )
            if streamed and len(streamed) > local:
                journal_path.write_bytes(streamed)
            if journal_path.exists() and journal_path.stat().st_size:
                kwargs["resume"] = True
        message["job"] = dataclasses.replace(job, kwargs=kwargs)
        return message, journal_path

    def _run_cell(self, message: dict):
        """One experiment cell, exactly as the process pool runs it."""
        from repro.experiments.parallel import _invoke

        return _invoke(message["job"], message.get("submitted_at", time.time()))

    def _run_eval(self, message: dict):
        """One in-run flow evaluation, exactly as ``EvalEngine`` runs it."""
        import numpy as np

        from repro.core.batch.engine import EvalOutcome
        from repro.core.resilience.retry import (
            RetryPolicy,
            evaluate_with_policy,
        )
        from repro.hlsim.flow import _stable_seed

        job = message["job"]
        space, flow = self._eval_context(message["benchmark"])
        policy = message.get("retry_policy") or RetryPolicy()
        rng = np.random.default_rng(
            _stable_seed(
                "retry", message.get("seed", 0), job.step, job.config_index
            )
        )
        start = time.perf_counter()
        try:
            outcome = evaluate_with_policy(
                flow, space[job.config_index], job.fidelity, policy, rng=rng
            )
            error = None
        except Exception:
            outcome = None
            error = traceback.format_exc()
        return EvalOutcome(
            job=job,
            outcome=outcome,
            error=error,
            queue_wait_s=0.0,
            exec_s=time.perf_counter() - start,
            worker=self.worker_id,
        )

    def _execute(self, message: dict):
        kind = message.get("kind")
        if kind == "cell":
            return self._run_cell(message)
        if kind == "eval":
            return self._run_eval(message)
        raise ValueError(f"unknown fleet task kind {kind!r}")

    # ------------------------------------------------------------------
    # lease lifecycle
    # ------------------------------------------------------------------

    def _heartbeat_loop(
        self,
        lease_id: str,
        stop: threading.Event,
        stream: _JournalStream | None = None,
    ) -> None:
        interval = self.stream_interval_s or max(0.05, self._lease_ttl_s / 3.0)
        while not stop.wait(interval):
            try:
                if stream is not None:
                    data, reset, start = stream.pending()
                else:
                    data, reset, start = b"", False, 0
                if data or reset:
                    ok = self.client.heartbeat(
                        lease_id, segment=data, reset=reset, offset=start
                    )
                    if ok:
                        stream.offset = start + len(data)
                else:
                    ok = self.client.heartbeat(lease_id)
                if not ok:
                    return  # lease expired: task re-issued elsewhere
            except RETRIABLE:
                # The broker may be mid-restart; a rehydrated lease
                # stays valid when the outage is shorter than its TTL,
                # so keep beating rather than abandoning the task.
                continue

    def _serve_one(self) -> bool:
        """Lease and run one task; ``False`` when the broker was idle."""
        grant = self.client.lease(self.worker_id, self.queues)
        if grant is None:
            return False
        self._lease_ttl_s = grant.ttl_s
        stream: _JournalStream | None = None
        result = None
        # Decode and prepare *before* the heartbeat starts so the
        # journal tail is known to the streamer from the first beat.
        try:
            message = load(grant.payload)
            if message.get("kind") == "cell":
                message, journal_path = self._prepare_cell(message, grant)
                if journal_path is not None:
                    stream = _JournalStream(journal_path)
        except Exception:
            message = None
            result = {
                "error": traceback.format_exc(),
                "worker": self.worker_id,
            }
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(grant.lease_id, stop, stream),
            daemon=True,
        )
        beat.start()
        start = time.perf_counter()
        try:
            # Task-level crashes are data (the outcome carries the
            # traceback); only broker/protocol failures escape.
            if result is None:
                try:
                    result = self._execute(message)
                except Exception:
                    result = {
                        "error": traceback.format_exc(),
                        "worker": self.worker_id,
                    }
        finally:
            stop.set()
        exec_s = time.perf_counter() - start
        beat.join(timeout=1.0)
        self.client.complete(
            grant.task_id,
            dump(result),
            lease_id=grant.lease_id,
            worker=self.worker_id,
            exec_s=exec_s,
        )
        self.tasks_done += 1
        return True

    def run(self) -> int:
        """Register, then serve until told (or configured) to stop."""
        check_wire_schema()
        if self.cache_dir:
            # Workers share the sharded ground-truth cache through the
            # same env override the harness honors.
            os.environ["REPRO_GT_CACHE_DIR"] = self.cache_dir
        ack = self.client.register(
            self.worker_id,
            capabilities={
                "cpus": os.cpu_count() or 1,
                "queues": self.queues,
                "pid": os.getpid(),
                "host": socket.gethostname(),
            },
        )
        self._lease_ttl_s = float(ack.get("lease_ttl_s", 30.0))
        idle_since: float | None = None
        down_since: float | None = None
        down_count = 0
        while True:
            if self.max_tasks is not None and self.tasks_done >= self.max_tasks:
                return 0
            try:
                served = self._serve_one()
            except RETRIABLE:
                # The client already retried with backoff; keep riding
                # out the outage until the patience window closes.
                # Reconnect reporting belongs to the client's hook (it
                # tracks the outage across requests and fires exactly
                # once on recovery) — this loop only paces the waiting.
                now = time.monotonic()
                if down_since is None:
                    down_since = now
                if now - down_since >= self.broker_patience_s:
                    return 0  # broker stayed gone: nothing left to do
                down_count += 1
                time.sleep(min(2.0, 0.1 * (2 ** min(down_count, 5))))
                continue
            down_since = None
            down_count = 0
            if served:
                idle_since = None
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if (
                self.exit_on_idle_s is not None
                and now - idle_since >= self.exit_on_idle_s
            ):
                return 0
            time.sleep(self.poll_s)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.worker",
        description="Leased worker agent for the distributed tuning fleet.",
    )
    parser.add_argument(
        "--broker", required=True, help="broker URL, e.g. http://host:8947"
    )
    parser.add_argument(
        "--worker-id", default="", help="stable identity (default host:pid)"
    )
    parser.add_argument(
        "--queues", default="",
        help="comma-separated queue capability filter (default: any)",
    )
    parser.add_argument(
        "--cache-dir", default="",
        help="shared ground-truth cache directory (sets "
             "$REPRO_GT_CACHE_DIR for this agent)",
    )
    parser.add_argument(
        "--journal-root", default="",
        help="remap cell journal dirs to this worker-private directory "
             "(multi-machine fleets: journals travel via the broker)",
    )
    parser.add_argument(
        "--auth-key-file", default="",
        help="shared HMAC key file for the authenticated wire "
             "(falls back to $REPRO_FLEET_AUTH_KEY[_FILE])",
    )
    parser.add_argument(
        "--poll", type=float, default=0.2,
        help="idle poll interval in seconds (default 0.2)",
    )
    parser.add_argument(
        "--max-tasks", type=int, default=0,
        help="exit after N completed tasks (0 = unlimited)",
    )
    parser.add_argument(
        "--exit-on-idle", type=float, default=0.0,
        help="exit after this many consecutive idle seconds "
             "(0 = keep polling forever)",
    )
    parser.add_argument(
        "--stream-interval", type=float, default=0.0,
        help="journal-segment heartbeat interval in seconds "
             "(0 = lease ttl / 3)",
    )
    parser.add_argument(
        "--broker-patience", type=float, default=60.0,
        help="give up after this many seconds of continuous broker "
             "unreachability (default 60)",
    )
    args = parser.parse_args(argv)

    from repro.core.resilience.signals import terminate_on_signals

    worker = FleetWorker(
        args.broker,
        worker_id=args.worker_id or None,
        queues=[q for q in args.queues.split(",") if q] or None,
        cache_dir=args.cache_dir or None,
        journal_root=args.journal_root or None,
        auth_key=load_auth_key(args.auth_key_file or None),
        poll_s=args.poll,
        max_tasks=args.max_tasks or None,
        exit_on_idle_s=args.exit_on_idle or None,
        stream_interval_s=args.stream_interval or None,
        broker_patience_s=args.broker_patience,
    )
    with terminate_on_signals():
        return worker.run()


if __name__ == "__main__":
    sys.exit(main())
