"""Fleet worker agent: lease → execute → stream the outcome back.

::

    python -m repro.fleet.worker --broker http://HOST:PORT
        [--worker-id NAME] [--queues q1,q2] [--cache-dir DIR]
        [--poll 0.2] [--max-tasks N] [--exit-on-idle SECONDS]

The agent wraps the exact execution paths the single-box engines use,
so a fleet run is bitwise identical to a local one:

- ``kind == "cell"`` tasks carry a :class:`repro.experiments.parallel.
  Job` and run through the same :func:`repro.experiments.parallel.
  _invoke` wrapper the process pool uses — same seeds, same scoring,
  same :class:`JobOutcome` shape (including crash capture: a raising
  cell returns an outcome with ``error`` set, it never kills the
  agent).
- ``kind == "eval"`` tasks carry an in-run :class:`repro.core.batch.
  engine.EvalJob` plus the session's seed and retry policy, and run
  through :func:`repro.core.resilience.retry.evaluate_with_policy`
  with the **same deterministic backoff-jitter stream**
  (``_stable_seed("retry", seed, step, config_index)``) the local
  :class:`EvalEngine` derives — retry timing draws are identical no
  matter which machine picks the job up.  The per-benchmark flow is
  built once and cached (reports are deterministic per configuration).

While a task executes, a daemon heartbeat thread renews the lease
every ``ttl/3`` seconds; if the broker reports the lease gone (this
agent stalled past the TTL and the task was re-issued) the heartbeat
stops, the eventual completion is streamed anyway, and the broker's
first-writer-wins rule drops whichever copy lands second.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
import traceback

from repro.fleet.client import BrokerClient
from repro.fleet.wire import check_wire_schema, dump, load

__all__ = ["FleetWorker", "main"]


class FleetWorker:
    """One leased-execution loop against a broker."""

    def __init__(
        self,
        broker_url: str,
        worker_id: str | None = None,
        queues: list[str] | None = None,
        cache_dir: str | None = None,
        poll_s: float = 0.2,
        max_tasks: int | None = None,
        exit_on_idle_s: float | None = None,
    ):
        self.client = BrokerClient(broker_url)
        self.worker_id = worker_id or (
            f"{socket.gethostname()}:{os.getpid()}"
        )
        self.queues = queues
        self.cache_dir = cache_dir
        self.poll_s = poll_s
        self.max_tasks = max_tasks
        self.exit_on_idle_s = exit_on_idle_s
        self.tasks_done = 0
        self._lease_ttl_s = 30.0
        self._flows: dict[str, tuple] = {}  # benchmark -> (space, flow)

    # ------------------------------------------------------------------
    # task execution
    # ------------------------------------------------------------------

    def _eval_context(self, benchmark: str):
        """Per-benchmark (space, flow), built once and reused."""
        ctx = self._flows.get(benchmark)
        if ctx is None:
            from repro.benchsuite.registry import get_space
            from repro.hlsim.flow import HlsFlow

            space = get_space(benchmark)
            ctx = (space, HlsFlow.for_space(space))
            self._flows[benchmark] = ctx
        return ctx

    def _run_cell(self, message: dict):
        """One experiment cell, exactly as the process pool runs it."""
        from repro.experiments.parallel import _invoke

        return _invoke(message["job"], message.get("submitted_at", time.time()))

    def _run_eval(self, message: dict):
        """One in-run flow evaluation, exactly as ``EvalEngine`` runs it."""
        import numpy as np

        from repro.core.batch.engine import EvalOutcome
        from repro.core.resilience.retry import (
            RetryPolicy,
            evaluate_with_policy,
        )
        from repro.hlsim.flow import _stable_seed

        job = message["job"]
        space, flow = self._eval_context(message["benchmark"])
        policy = message.get("retry_policy") or RetryPolicy()
        rng = np.random.default_rng(
            _stable_seed(
                "retry", message.get("seed", 0), job.step, job.config_index
            )
        )
        start = time.perf_counter()
        try:
            outcome = evaluate_with_policy(
                flow, space[job.config_index], job.fidelity, policy, rng=rng
            )
            error = None
        except Exception:
            outcome = None
            error = traceback.format_exc()
        return EvalOutcome(
            job=job,
            outcome=outcome,
            error=error,
            queue_wait_s=0.0,
            exec_s=time.perf_counter() - start,
            worker=self.worker_id,
        )

    def _execute(self, message: dict):
        kind = message.get("kind")
        if kind == "cell":
            return self._run_cell(message)
        if kind == "eval":
            return self._run_eval(message)
        raise ValueError(f"unknown fleet task kind {kind!r}")

    # ------------------------------------------------------------------
    # lease lifecycle
    # ------------------------------------------------------------------

    def _heartbeat_loop(self, lease_id: str, stop: threading.Event) -> None:
        interval = max(0.05, self._lease_ttl_s / 3.0)
        while not stop.wait(interval):
            try:
                if not self.client.heartbeat(lease_id):
                    return  # lease expired: task re-issued elsewhere
            except OSError:
                return  # broker unreachable; completion will also fail

    def _serve_one(self) -> bool:
        """Lease and run one task; ``False`` when the broker was idle."""
        grant = self.client.lease(self.worker_id, self.queues)
        if grant is None:
            return False
        self._lease_ttl_s = grant.ttl_s
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(grant.lease_id, stop),
            daemon=True,
        )
        beat.start()
        start = time.perf_counter()
        try:
            # Task-level crashes are data (the outcome carries the
            # traceback); only broker/protocol failures escape.
            try:
                result = self._execute(load(grant.payload))
            except Exception:
                result = {
                    "error": traceback.format_exc(),
                    "worker": self.worker_id,
                }
        finally:
            stop.set()
        exec_s = time.perf_counter() - start
        beat.join(timeout=1.0)
        self.client.complete(
            grant.task_id,
            dump(result),
            lease_id=grant.lease_id,
            worker=self.worker_id,
            exec_s=exec_s,
        )
        self.tasks_done += 1
        return True

    def run(self) -> int:
        """Register, then serve until told (or configured) to stop."""
        check_wire_schema()
        if self.cache_dir:
            # Workers share the sharded ground-truth cache through the
            # same env override the harness honors.
            os.environ["REPRO_GT_CACHE_DIR"] = self.cache_dir
        ack = self.client.register(
            self.worker_id,
            capabilities={
                "cpus": os.cpu_count() or 1,
                "queues": self.queues,
                "pid": os.getpid(),
                "host": socket.gethostname(),
            },
        )
        self._lease_ttl_s = float(ack.get("lease_ttl_s", 30.0))
        idle_since: float | None = None
        while True:
            if self.max_tasks is not None and self.tasks_done >= self.max_tasks:
                return 0
            try:
                served = self._serve_one()
            except (OSError, ConnectionError):
                return 0  # broker gone: a worker has nothing left to do
            if served:
                idle_since = None
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if (
                self.exit_on_idle_s is not None
                and now - idle_since >= self.exit_on_idle_s
            ):
                return 0
            time.sleep(self.poll_s)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.worker",
        description="Leased worker agent for the distributed tuning fleet.",
    )
    parser.add_argument(
        "--broker", required=True, help="broker URL, e.g. http://host:8947"
    )
    parser.add_argument(
        "--worker-id", default="", help="stable identity (default host:pid)"
    )
    parser.add_argument(
        "--queues", default="",
        help="comma-separated queue capability filter (default: any)",
    )
    parser.add_argument(
        "--cache-dir", default="",
        help="shared ground-truth cache directory (sets "
             "$REPRO_GT_CACHE_DIR for this agent)",
    )
    parser.add_argument(
        "--poll", type=float, default=0.2,
        help="idle poll interval in seconds (default 0.2)",
    )
    parser.add_argument(
        "--max-tasks", type=int, default=0,
        help="exit after N completed tasks (0 = unlimited)",
    )
    parser.add_argument(
        "--exit-on-idle", type=float, default=0.0,
        help="exit after this many consecutive idle seconds "
             "(0 = keep polling forever)",
    )
    args = parser.parse_args(argv)

    from repro.core.resilience.signals import terminate_on_signals

    worker = FleetWorker(
        args.broker,
        worker_id=args.worker_id or None,
        queues=[q for q in args.queues.split(",") if q] or None,
        cache_dir=args.cache_dir or None,
        poll_s=args.poll,
        max_tasks=args.max_tasks or None,
        exit_on_idle_s=args.exit_on_idle or None,
    )
    with terminate_on_signals():
        return worker.run()


if __name__ == "__main__":
    sys.exit(main())
