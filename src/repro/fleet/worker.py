"""Fleet worker agent: lease → execute → stream the outcome back.

::

    python -m repro.fleet.worker --broker http://HOST:PORT
        [--worker-id NAME] [--queues q1,q2] [--cache-dir DIR]
        [--journal-root DIR] [--auth-key-file PATH]
        [--poll 0.2] [--max-tasks N] [--exit-on-idle SECONDS]
        [--stream-interval SECONDS] [--broker-patience SECONDS]

The agent wraps the exact execution paths the single-box engines use,
so a fleet run is bitwise identical to a local one:

- ``kind == "cell"`` tasks carry a :class:`repro.experiments.parallel.
  Job` and run through the same :func:`repro.experiments.parallel.
  _invoke` wrapper the process pool uses — same seeds, same scoring,
  same :class:`JobOutcome` shape (including crash capture: a raising
  cell returns an outcome with ``error`` set, it never kills the
  agent).
- ``kind == "eval"`` tasks carry an in-run :class:`repro.core.batch.
  engine.EvalJob` plus the session's seed and retry policy, and run
  through :func:`repro.core.resilience.retry.evaluate_with_policy`
  with the **same deterministic backoff-jitter stream**
  (``_stable_seed("retry", seed, step, config_index)``) the local
  :class:`EvalEngine` derives — retry timing draws are identical no
  matter which machine picks the job up.  The per-benchmark flow is
  built once and cached (reports are deterministic per configuration).

While a task executes, a daemon heartbeat thread renews the lease
every ``ttl/3`` seconds; if the broker reports the lease gone (this
agent stalled past the TTL and the task was re-issued) the heartbeat
stops, the eventual completion is streamed anyway, and the broker's
first-writer-wins rule drops whichever copy lands second.

**Mid-cell resume.**  For journaled cells the heartbeat also tails the
cell's run journal and ships every new *complete* line to the broker
(offset-deduplicated, WAL-persisted there).  When a cell is re-issued
(``attempt > 1``) the replacement worker fetches the streamed prefix,
writes it to its own journal path, and runs the cell with
``resume=True`` — the optimizer's journal-v2 replay machinery then
replays the streamed commits instead of re-evaluating them, so a
SIGKILL'd worker costs one lease timeout plus only the *unstreamed*
tail of its cell.  ``--journal-root`` remaps cell journal dirs to a
worker-private directory, modeling separate machines (the only path
journal bytes can travel is through the broker).

**Broker outages.**  A worker never dies on ``ConnectionRefusedError``:
requests retry with deterministic-jitter backoff inside the client,
and the serve loop keeps polling through a continuous-failure window
of ``--broker-patience`` seconds (riding out broker restarts — a
rehydrated lease stays valid when the outage is shorter than its TTL)
before giving up.  Each survived outage is reported to the broker as a
``reconnect`` fleet-journal event.

**Observability** (DESIGN.md Sec. 15).  A lease that carries the
submitter's ``X-Repro-Trace`` context is adopted two ways: the agent
records an ``execute`` span under that trace id into ``--trace-dir``,
and it exports the context as ``$REPRO_TRACE_CONTEXT`` around the
task so the cell's own :class:`repro.obs.spans.SpanRecorder` parents
every engine/flow span into the originating session — one merged
Perfetto timeline across scheduler, broker and every worker.  Segment
heartbeats additionally attach the cell's running best-so-far front
summary (:class:`repro.obs.front.FrontTracker`), folded broker-side
into the fleet-wide ``/best`` view; ``--metrics-port`` starts a
sidecar thread serving the agent's own ``/metrics``.  All telemetry
is read-side — task bytes and seeds are untouched, so a traced fleet
run stays bitwise identical.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import socket
import sys
import threading
import time
import traceback
from pathlib import Path

from repro.fleet.client import RETRIABLE, BrokerClient
from repro.fleet.wire import check_wire_schema, dump, load, load_auth_key
from repro.obs.front import FrontTracker
from repro.obs.prom import counter, gauge, render_metrics

__all__ = ["FleetWorker", "main"]


class _JournalStream:
    """Tails one cell journal, yielding complete-line chunks to ship.

    ``offset`` is both the file position and the stream coordinate
    sent to the broker (the journal is append-only between rewrites).
    A file *shrink* means :func:`RunJournal.continue_from` rewrote it
    (resume compaction) — the stream restarts from zero with
    ``reset=True`` so the broker replaces its buffer.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.offset = 0

    def pending(self) -> tuple[bytes, bool, int]:
        """``(data, reset, start_offset)`` of unsent complete lines."""
        from repro.core.resilience.journal import tail_complete

        return tail_complete(self.path, self.offset)


class FleetWorker:
    """One leased-execution loop against a broker."""

    def __init__(
        self,
        broker_url: str,
        worker_id: str | None = None,
        queues: list[str] | None = None,
        cache_dir: str | None = None,
        poll_s: float = 0.2,
        max_tasks: int | None = None,
        exit_on_idle_s: float | None = None,
        auth_key: bytes | None = None,
        journal_root: str | None = None,
        stream_interval_s: float | None = None,
        broker_patience_s: float = 60.0,
        transport=None,
        trace_dir: str | None = None,
        metrics_port: int | None = None,
    ):
        self.worker_id = worker_id or (
            f"{socket.gethostname()}:{os.getpid()}"
        )
        self.client = BrokerClient(
            broker_url,
            auth_key=auth_key,
            transport=transport,
            identity=self.worker_id,
            on_reconnect=self._on_reconnect,
        )
        self.queues = queues
        self.cache_dir = cache_dir
        self.journal_root = journal_root
        self.poll_s = poll_s
        self.max_tasks = max_tasks
        self.exit_on_idle_s = exit_on_idle_s
        self.stream_interval_s = stream_interval_s
        self.broker_patience_s = float(broker_patience_s)
        self.tasks_done = 0
        self.reconnects = 0
        self.heartbeats_sent = 0
        self.segments_shipped = 0
        self.fronts_sent = 0
        self.executing = 0
        self._started = time.monotonic()
        self._lease_ttl_s = 30.0
        self._flows: dict[str, tuple] = {}  # benchmark -> (space, flow)
        self.metrics_port = metrics_port
        self._metrics_server = None
        self._spans = None
        self._trace_writer = None
        if trace_dir:
            from repro.obs.spans import SpanRecorder
            from repro.obs.trace import JsonlTraceWriter

            safe = "".join(
                c if c.isalnum() or c in "-_." else "_"
                for c in self.worker_id
            )
            self._trace_writer = JsonlTraceWriter(
                Path(trace_dir) / f"worker_{safe}.trace.jsonl"
            )
            self._spans = SpanRecorder(self._trace_writer)

    # ------------------------------------------------------------------
    # reconnect reporting
    # ------------------------------------------------------------------

    def _on_reconnect(self, failures: int, outage_s: float) -> None:
        self.reconnects += 1
        try:
            self.client.report_reconnect(self.worker_id, failures, outage_s)
        except Exception:
            pass  # the broker just came back; reporting is best-effort

    # ------------------------------------------------------------------
    # task execution
    # ------------------------------------------------------------------

    def _eval_context(self, benchmark: str):
        """Per-benchmark (space, flow), built once and reused."""
        ctx = self._flows.get(benchmark)
        if ctx is None:
            from repro.benchsuite.registry import get_space
            from repro.hlsim.flow import HlsFlow

            space = get_space(benchmark)
            ctx = (space, HlsFlow.for_space(space))
            self._flows[benchmark] = ctx
        return ctx

    def _prepare_cell(self, message: dict, grant) -> tuple[dict, Path | None]:
        """Rewrite one cell task for this worker; returns its journal path.

        Applies the ``--journal-root`` remap, and on a re-issued lease
        (``attempt > 1``) fetches the streamed journal prefix from the
        broker and runs the cell with ``resume=True`` so the replay
        machinery salvages every streamed commit.  A longer *local*
        journal (this worker re-leasing its own task) is kept as is.
        """
        job = message.get("job")
        if job is None:
            return message, None
        kwargs = dict(job.kwargs)
        if not kwargs.get("journal_dir"):
            return message, None
        if self.journal_root:
            kwargs["journal_dir"] = self.journal_root
        from repro.experiments.harness import journal_path_for

        journal_dir = Path(kwargs["journal_dir"])
        journal_dir.mkdir(parents=True, exist_ok=True)
        journal_path = journal_path_for(
            journal_dir, job.benchmark, job.method, kwargs["seed"]
        )
        if grant.attempt > 1:
            try:
                streamed, _commits = self.client.fetch_journal(
                    grant.task_id, grant=True
                )
            except Exception:
                streamed = b""
            local = (
                journal_path.stat().st_size if journal_path.exists() else 0
            )
            if streamed and len(streamed) > local:
                journal_path.write_bytes(streamed)
            if journal_path.exists() and journal_path.stat().st_size:
                kwargs["resume"] = True
        message["job"] = dataclasses.replace(job, kwargs=kwargs)
        return message, journal_path

    def _run_cell(self, message: dict):
        """One experiment cell, exactly as the process pool runs it."""
        from repro.experiments.parallel import _invoke

        return _invoke(message["job"], message.get("submitted_at", time.time()))

    def _run_eval(self, message: dict):
        """One in-run flow evaluation, exactly as ``EvalEngine`` runs it."""
        import numpy as np

        from repro.core.batch.engine import EvalOutcome
        from repro.core.resilience.retry import (
            RetryPolicy,
            evaluate_with_policy,
        )
        from repro.hlsim.flow import _stable_seed

        job = message["job"]
        space, flow = self._eval_context(message["benchmark"])
        policy = message.get("retry_policy") or RetryPolicy()
        rng = np.random.default_rng(
            _stable_seed(
                "retry", message.get("seed", 0), job.step, job.config_index
            )
        )
        start = time.perf_counter()
        try:
            outcome = evaluate_with_policy(
                flow, space[job.config_index], job.fidelity, policy, rng=rng
            )
            error = None
        except Exception:
            outcome = None
            error = traceback.format_exc()
        return EvalOutcome(
            job=job,
            outcome=outcome,
            error=error,
            queue_wait_s=0.0,
            exec_s=time.perf_counter() - start,
            worker=self.worker_id,
        )

    def _execute(self, message: dict):
        kind = message.get("kind")
        if kind == "cell":
            return self._run_cell(message)
        if kind == "eval":
            return self._run_eval(message)
        raise ValueError(f"unknown fleet task kind {kind!r}")

    def _execute_span(self, grant, message: dict):
        """Trace-context adoption around one leased execution.

        Exports the lease's propagated context as
        ``$REPRO_TRACE_CONTEXT`` (the agent runs one task at a time)
        so the cell's own span recorder parents into the originating
        session, and — with ``--trace-dir`` — records the agent-level
        ``execute`` span under the same trace id.
        """
        from contextlib import ExitStack, contextmanager

        from repro.obs.spans import TRACE_CONTEXT_ENV, parse_trace_context

        @contextmanager
        def _adopt_env():
            previous = os.environ.get(TRACE_CONTEXT_ENV)
            if grant.trace:
                os.environ[TRACE_CONTEXT_ENV] = grant.trace
            else:
                os.environ.pop(TRACE_CONTEXT_ENV, None)
            try:
                yield
            finally:
                if previous is None:
                    os.environ.pop(TRACE_CONTEXT_ENV, None)
                else:
                    os.environ[TRACE_CONTEXT_ENV] = previous

        stack = ExitStack()
        stack.enter_context(_adopt_env())
        if self._spans is not None:
            trace_id, remote_parent = parse_trace_context(grant.trace)
            stack.enter_context(
                self._spans.span(
                    "execute", cat="fleet",
                    trace=trace_id, remote_parent=remote_parent,
                    task=grant.task_id, queue=grant.queue,
                    kind=(message or {}).get("kind"),
                    attempt=grant.attempt, worker=self.worker_id,
                )
            )
        return stack

    # ------------------------------------------------------------------
    # metrics sidecar
    # ------------------------------------------------------------------

    def metrics_text(self) -> str:
        """This agent's own Prometheus exposition (counters + gauges)."""
        return render_metrics([
            counter(
                "worker_tasks_completed_total",
                "Tasks executed and streamed back by this agent.",
                self.tasks_done,
            ),
            counter(
                "worker_reconnects_total",
                "Broker outages this agent survived.",
                self.reconnects,
            ),
            counter(
                "worker_heartbeats_total",
                "Lease heartbeats sent (with or without a segment).",
                self.heartbeats_sent,
            ),
            counter(
                "worker_segments_shipped_total",
                "Journal segments streamed to the broker mid-cell.",
                self.segments_shipped,
            ),
            counter(
                "worker_fronts_sent_total",
                "Heartbeats that carried a best-so-far front summary.",
                self.fronts_sent,
            ),
            gauge(
                "worker_executing",
                "1 while a leased task is running, else 0.",
                self.executing,
            ),
            gauge(
                "worker_uptime_seconds",
                "Seconds since this agent started.",
                time.monotonic() - self._started,
            ),
        ])

    def _start_metrics_server(self) -> None:
        """Sidecar ``/metrics`` + ``/healthz`` on ``--metrics-port``.

        Runs on a daemon thread so a wedged scrape can never stall the
        serve loop; the handler reads plain attributes (ints assigned
        atomically under the GIL), so no lock crosses the hot path.
        """
        if self.metrics_port is None:
            return
        import http.server
        import json

        agent = self

        class _Handler(http.server.BaseHTTPRequestHandler):
            def log_message(self, *args):  # quiet by default
                pass

            def do_GET(self):
                path = self.path.partition("?")[0]
                if path == "/metrics":
                    body = agent.metrics_text().encode("utf-8")
                    ctype = "text/plain; version=0.0.4"
                elif path == "/healthz":
                    body = json.dumps({
                        "ok": True,
                        "worker": agent.worker_id,
                        "uptime_s": time.monotonic() - agent._started,
                        "executing": bool(agent.executing),
                    }).encode("utf-8")
                    ctype = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._metrics_server = http.server.ThreadingHTTPServer(
            ("127.0.0.1", self.metrics_port), _Handler
        )
        self.metrics_port = self._metrics_server.server_address[1]
        threading.Thread(
            target=self._metrics_server.serve_forever,
            kwargs={"poll_interval": 0.2},
            daemon=True,
        ).start()

    def _close_telemetry(self) -> None:
        if self._metrics_server is not None:
            try:
                self._metrics_server.shutdown()
                self._metrics_server.server_close()
            except Exception:
                pass
            self._metrics_server = None
        if self._trace_writer is not None:
            try:
                self._trace_writer.close()
            except Exception:
                pass
            self._trace_writer = None
            self._spans = None

    # ------------------------------------------------------------------
    # lease lifecycle
    # ------------------------------------------------------------------

    def _heartbeat_loop(
        self,
        lease_id: str,
        stop: threading.Event,
        stream: _JournalStream | None = None,
    ) -> None:
        interval = self.stream_interval_s or max(0.05, self._lease_ttl_s / 3.0)
        # The tracker folds exactly the bytes this loop ships, so the
        # attached best-so-far summary always describes a prefix the
        # broker also holds (no phantom points on a lost segment).
        tracker = FrontTracker()
        while not stop.wait(interval):
            try:
                if stream is not None:
                    data, reset, start = stream.pending()
                else:
                    data, reset, start = b"", False, 0
                if data or reset:
                    if reset:
                        tracker = FrontTracker()  # journal was rewritten
                    tracker.feed(data)
                    front = tracker.summary() if tracker.commits else None
                    ok = self.client.heartbeat(
                        lease_id, segment=data, reset=reset, offset=start,
                        front=front,
                    )
                    if ok:
                        stream.offset = start + len(data)
                        self.segments_shipped += 1
                        if front is not None:
                            self.fronts_sent += 1
                else:
                    ok = self.client.heartbeat(lease_id)
                self.heartbeats_sent += 1
                if not ok:
                    return  # lease expired: task re-issued elsewhere
            except RETRIABLE:
                # The broker may be mid-restart; a rehydrated lease
                # stays valid when the outage is shorter than its TTL,
                # so keep beating rather than abandoning the task.
                continue

    def _serve_one(self) -> bool:
        """Lease and run one task; ``False`` when the broker was idle."""
        grant = self.client.lease(self.worker_id, self.queues)
        if grant is None:
            return False
        self._lease_ttl_s = grant.ttl_s
        stream: _JournalStream | None = None
        result = None
        # Decode and prepare *before* the heartbeat starts so the
        # journal tail is known to the streamer from the first beat.
        try:
            message = load(grant.payload)
            if message.get("kind") == "cell":
                message, journal_path = self._prepare_cell(message, grant)
                if journal_path is not None:
                    stream = _JournalStream(journal_path)
        except Exception:
            message = None
            result = {
                "error": traceback.format_exc(),
                "worker": self.worker_id,
            }
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(grant.lease_id, stop, stream),
            daemon=True,
        )
        beat.start()
        start = time.perf_counter()
        self.executing = 1
        try:
            # Task-level crashes are data (the outcome carries the
            # traceback); only broker/protocol failures escape.
            if result is None:
                try:
                    with self._execute_span(grant, message):
                        result = self._execute(message)
                except Exception:
                    result = {
                        "error": traceback.format_exc(),
                        "worker": self.worker_id,
                    }
        finally:
            self.executing = 0
            stop.set()
        exec_s = time.perf_counter() - start
        beat.join(timeout=1.0)
        self.client.complete(
            grant.task_id,
            dump(result),
            lease_id=grant.lease_id,
            worker=self.worker_id,
            exec_s=exec_s,
        )
        self.tasks_done += 1
        return True

    def run(self) -> int:
        """Register, then serve until told (or configured) to stop."""
        self._start_metrics_server()
        try:
            return self._run()
        finally:
            self._close_telemetry()

    def _run(self) -> int:
        check_wire_schema()
        if self.cache_dir:
            # Workers share the sharded ground-truth cache through the
            # same env override the harness honors.
            os.environ["REPRO_GT_CACHE_DIR"] = self.cache_dir
        ack = self.client.register(
            self.worker_id,
            capabilities={
                "cpus": os.cpu_count() or 1,
                "queues": self.queues,
                "pid": os.getpid(),
                "host": socket.gethostname(),
            },
        )
        self._lease_ttl_s = float(ack.get("lease_ttl_s", 30.0))
        idle_since: float | None = None
        down_since: float | None = None
        down_count = 0
        while True:
            if self.max_tasks is not None and self.tasks_done >= self.max_tasks:
                return 0
            try:
                served = self._serve_one()
            except RETRIABLE:
                # The client already retried with backoff; keep riding
                # out the outage until the patience window closes.
                # Reconnect reporting belongs to the client's hook (it
                # tracks the outage across requests and fires exactly
                # once on recovery) — this loop only paces the waiting.
                now = time.monotonic()
                if down_since is None:
                    down_since = now
                if now - down_since >= self.broker_patience_s:
                    return 0  # broker stayed gone: nothing left to do
                down_count += 1
                time.sleep(min(2.0, 0.1 * (2 ** min(down_count, 5))))
                continue
            down_since = None
            down_count = 0
            if served:
                idle_since = None
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if (
                self.exit_on_idle_s is not None
                and now - idle_since >= self.exit_on_idle_s
            ):
                return 0
            time.sleep(self.poll_s)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.worker",
        description="Leased worker agent for the distributed tuning fleet.",
    )
    parser.add_argument(
        "--broker", required=True, help="broker URL, e.g. http://host:8947"
    )
    parser.add_argument(
        "--worker-id", default="", help="stable identity (default host:pid)"
    )
    parser.add_argument(
        "--queues", default="",
        help="comma-separated queue capability filter (default: any)",
    )
    parser.add_argument(
        "--cache-dir", default="",
        help="shared ground-truth cache directory (sets "
             "$REPRO_GT_CACHE_DIR for this agent)",
    )
    parser.add_argument(
        "--journal-root", default="",
        help="remap cell journal dirs to this worker-private directory "
             "(multi-machine fleets: journals travel via the broker)",
    )
    parser.add_argument(
        "--auth-key-file", default="",
        help="shared HMAC key file for the authenticated wire "
             "(falls back to $REPRO_FLEET_AUTH_KEY[_FILE])",
    )
    parser.add_argument(
        "--poll", type=float, default=0.2,
        help="idle poll interval in seconds (default 0.2)",
    )
    parser.add_argument(
        "--max-tasks", type=int, default=0,
        help="exit after N completed tasks (0 = unlimited)",
    )
    parser.add_argument(
        "--exit-on-idle", type=float, default=0.0,
        help="exit after this many consecutive idle seconds "
             "(0 = keep polling forever)",
    )
    parser.add_argument(
        "--stream-interval", type=float, default=0.0,
        help="journal-segment heartbeat interval in seconds "
             "(0 = lease ttl / 3)",
    )
    parser.add_argument(
        "--broker-patience", type=float, default=60.0,
        help="give up after this many seconds of continuous broker "
             "unreachability (default 60)",
    )
    parser.add_argument(
        "--trace-dir", default="",
        help="record agent-level execute spans (parented into the "
             "submitting session's trace) to this directory",
    )
    parser.add_argument(
        "--metrics-port", type=int, default=0,
        help="serve this agent's /metrics and /healthz on a sidecar "
             "thread at this loopback port (0 = off)",
    )
    args = parser.parse_args(argv)

    from repro.core.resilience.signals import terminate_on_signals

    worker = FleetWorker(
        args.broker,
        worker_id=args.worker_id or None,
        queues=[q for q in args.queues.split(",") if q] or None,
        cache_dir=args.cache_dir or None,
        journal_root=args.journal_root or None,
        auth_key=load_auth_key(args.auth_key_file or None),
        poll_s=args.poll,
        max_tasks=args.max_tasks or None,
        exit_on_idle_s=args.exit_on_idle or None,
        stream_interval_s=args.stream_interval or None,
        broker_patience_s=args.broker_patience,
        trace_dir=args.trace_dir or None,
        metrics_port=args.metrics_port or None,
    )
    with terminate_on_signals():
        return worker.run()


if __name__ == "__main__":
    sys.exit(main())
