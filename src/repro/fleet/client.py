"""Thin stdlib HTTP client for the fleet broker.

One :class:`BrokerClient` per process/thread role (worker loop,
executor, scheduler).  Each call opens a short-lived
``http.client.HTTPConnection`` — the broker is a threading server on a
loopback or rack-local link, so connection reuse buys nothing worth the
thread-safety bookkeeping.

Every request carries the wire fingerprint header; a ``409`` from the
broker (version skew between this process and the broker/workers)
raises :class:`WireMismatchError` immediately rather than letting a
mismatched peer exchange payloads.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse

from repro.fleet.wire import WIRE_HEADER, wire_fingerprint

__all__ = [
    "BrokerClient",
    "BrokerError",
    "LeaseGrant",
    "WireMismatchError",
]


class BrokerError(RuntimeError):
    """The broker rejected a request (non-2xx beyond protocol cases)."""


class WireMismatchError(BrokerError):
    """Broker and this process disagree on the pickle wire schema."""


class LeaseGrant:
    """One granted lease: identity plus the opaque payload bytes."""

    __slots__ = ("task_id", "lease_id", "queue", "ttl_s", "attempt", "payload")

    def __init__(self, task_id, lease_id, queue, ttl_s, attempt, payload):
        self.task_id = task_id
        self.lease_id = lease_id
        self.queue = queue
        self.ttl_s = ttl_s
        self.attempt = attempt
        self.payload = payload


class BrokerClient:
    """Talk to one broker at ``url`` (e.g. ``http://127.0.0.1:8947``)."""

    def __init__(self, url: str, timeout_s: float = 30.0):
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported broker URL scheme in {url!r}")
        netloc = parsed.netloc or parsed.path
        self.host, _, port = netloc.partition(":")
        self.port = int(port or 80)
        self.timeout_s = timeout_s
        self._wire = wire_fingerprint()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        ctype: str = "application/octet-stream",
    ):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request(
                method,
                path,
                body=body,
                headers={WIRE_HEADER: self._wire, "Content-Type": ctype},
            )
            response = conn.getresponse()
            data = response.read()
            if response.status == 409:
                detail = {}
                try:
                    detail = json.loads(data)
                except (ValueError, UnicodeDecodeError):
                    pass
                raise WireMismatchError(
                    "broker rejected wire fingerprint "
                    f"(want {detail.get('want')}, got {detail.get('got')}) — "
                    "broker and workers must run the same repro revision"
                )
            return response.status, dict(response.getheaders()), data
        finally:
            conn.close()

    def _json_post(self, path: str, message: dict):
        status, headers, data = self._request(
            "POST", path, json.dumps(message).encode(), "application/json"
        )
        return status, headers, data

    # ------------------------------------------------------------------
    # broker API
    # ------------------------------------------------------------------

    def register(self, worker_id: str, capabilities: dict | None = None) -> dict:
        status, _, data = self._json_post(
            "/register",
            {"worker_id": worker_id, "capabilities": capabilities or {}},
        )
        if status != 200:
            raise BrokerError(f"register failed ({status}): {data!r}")
        return json.loads(data)

    def create_queue(self, queue: str) -> None:
        status, _, data = self._json_post("/queues", {"queue": queue})
        if status != 200:
            raise BrokerError(f"create_queue failed ({status}): {data!r}")

    def submit(self, queue: str, payload: bytes) -> str:
        status, _, data = self._request(
            "POST", f"/submit?queue={urllib.parse.quote(queue)}", payload
        )
        if status != 200:
            raise BrokerError(f"submit failed ({status}): {data!r}")
        return json.loads(data)["task_id"]

    def lease(
        self, worker_id: str, queues: list[str] | None = None
    ) -> LeaseGrant | None:
        status, headers, data = self._json_post(
            "/lease", {"worker_id": worker_id, "queues": queues}
        )
        if status != 200:
            raise BrokerError(f"lease failed ({status}): {data!r}")
        if headers.get("Content-Type") == "application/json":
            return None  # nothing to do
        return LeaseGrant(
            task_id=headers["X-Task-Id"],
            lease_id=headers["X-Lease-Id"],
            queue=headers["X-Queue"],
            ttl_s=float(headers["X-Lease-Ttl"]),
            attempt=int(headers["X-Attempt"]),
            payload=data,
        )

    def heartbeat(self, lease_id: str) -> bool:
        status, _, _data = self._json_post(
            "/heartbeat", {"lease_id": lease_id}
        )
        return status == 200

    def complete(
        self,
        task_id: str,
        payload: bytes,
        lease_id: str | None = None,
        worker: str = "",
        exec_s: float = 0.0,
    ) -> str:
        query = urllib.parse.urlencode(
            {
                "task_id": task_id,
                "lease_id": lease_id or "",
                "worker": worker,
                "exec_s": f"{exec_s:.6f}",
            }
        )
        status, _, data = self._request("POST", f"/complete?{query}", payload)
        if status != 200:
            raise BrokerError(f"complete failed ({status}): {data!r}")
        return json.loads(data)["status"]

    def result(self, task_id: str) -> tuple[str, bytes | None]:
        """``(state, payload_or_None)``; raises ``KeyError`` on unknown."""
        status, headers, data = self._request(
            "GET", f"/result?task_id={urllib.parse.quote(task_id)}"
        )
        if status == 404:
            raise KeyError(task_id)
        if status == 202:
            return json.loads(data)["state"], None
        if status != 200:
            raise BrokerError(f"result failed ({status}): {data!r}")
        return headers.get("X-State", "done"), data

    def wait_result(
        self,
        task_id: str,
        poll_s: float = 0.05,
        timeout_s: float | None = None,
    ) -> bytes:
        """Block until one task's outcome lands (polling)."""
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        while True:
            _state, payload = self.result(task_id)
            if payload is not None:
                return payload
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"task {task_id} not completed within {timeout_s}s"
                )
            time.sleep(poll_s)

    def stats(self) -> dict:
        status, _, data = self._request("GET", "/stats")
        if status != 200:
            raise BrokerError(f"stats failed ({status}): {data!r}")
        return json.loads(data)

    def shutdown(self) -> None:
        try:
            self._json_post("/shutdown", {})
        except (OSError, http.client.HTTPException):
            pass  # broker already gone — that is the goal
