"""Stdlib HTTP client for the fleet broker, hardened for crashes.

One :class:`BrokerClient` per process/thread role (worker loop,
executor, scheduler).  Each call opens a short-lived
``http.client.HTTPConnection`` — the broker is a threading server on a
loopback or rack-local link, so connection reuse buys nothing worth the
thread-safety bookkeeping.

Every request carries the wire fingerprint header; a ``409`` from the
broker (version skew between this process and the broker/workers)
raises :class:`WireMismatchError` immediately rather than letting a
mismatched peer exchange payloads.  When the client holds the shared
fleet key it also signs every request (``X-Repro-Auth``); a ``401``
raises :class:`WireAuthError` — both are *fatal*, never retried.

**Transient failures are retried.**  Connection refusals and dropped
responses (``OSError``/``http.client.HTTPException``) ride a bounded
exponential-backoff loop with *deterministic* jitter (seeded from the
client identity, so reruns back off identically); recovery fires the
``on_reconnect`` callback once with the failure count and outage
length.  Retries are safe because every mutating route is idempotent:
``/submit`` carries a client-generated task id, ``/complete`` is
first-writer-wins, and segment heartbeats carry stream offsets the
broker deduplicates on.

A ``transport`` hook wraps the single-shot sender — the seam where
:class:`repro.core.resilience.faults.FaultyTransport` injects
refusals, drops, latency and duplicate deliveries in the chaos bench.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
import urllib.parse
import uuid
import zlib

from repro.fleet.wire import (
    AUTH_HEADER,
    TRACE_HEADER,
    WIRE_HEADER,
    sign_request,
    wire_fingerprint,
)

__all__ = [
    "BrokerClient",
    "BrokerError",
    "LeaseGrant",
    "WireAuthError",
    "WireMismatchError",
]

#: Exceptions worth retrying: the broker is briefly unreachable
#: (restarting) or the connection tore mid-exchange.
RETRIABLE = (OSError, http.client.HTTPException)


class BrokerError(RuntimeError):
    """The broker rejected a request (non-2xx beyond protocol cases)."""


class WireMismatchError(BrokerError):
    """Broker and this process disagree on the pickle wire schema."""


class WireAuthError(BrokerError):
    """The broker rejected this client's HMAC (missing or wrong key)."""


class LeaseGrant:
    """One granted lease: identity plus the opaque payload bytes.

    ``trace`` is the task's propagated ``"<trace_id>:<span_id>"``
    context (the scheduler's submit span), or ``None`` for untraced
    submissions.
    """

    __slots__ = (
        "task_id", "lease_id", "queue", "ttl_s", "attempt", "payload",
        "trace",
    )

    def __init__(
        self, task_id, lease_id, queue, ttl_s, attempt, payload, trace=None
    ):
        self.task_id = task_id
        self.lease_id = lease_id
        self.queue = queue
        self.ttl_s = ttl_s
        self.attempt = attempt
        self.payload = payload
        self.trace = trace


def _default_retry_policy():
    """Bounded backoff against a restarting broker (lazy import — the
    retry module pulls numpy, which monitor-adjacent users never need)."""
    from repro.core.resilience.retry import RetryPolicy

    return RetryPolicy(
        max_attempts=5,
        base_backoff_s=0.05,
        backoff_multiplier=2.0,
        max_backoff_s=2.0,
        jitter=0.25,
    )


class BrokerClient:
    """Talk to one broker at ``url`` (e.g. ``http://127.0.0.1:8947``).

    ``auth_key`` signs every request when set; ``retry_policy`` bounds
    the reconnect loop (``None`` → the default policy, ``False``-y
    ``max_attempts<=1`` → fail fast); ``transport`` intercepts the
    single-shot sender (fault injection); ``on_reconnect(failures,
    outage_s)`` fires after each recovered outage; ``identity`` seeds
    the deterministic backoff jitter.
    """

    def __init__(
        self,
        url: str,
        timeout_s: float = 30.0,
        auth_key: bytes | None = None,
        retry_policy=None,
        transport=None,
        on_reconnect=None,
        identity: str = "",
    ):
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"unsupported broker URL scheme in {url!r}")
        netloc = parsed.netloc or parsed.path
        self.host, _, port = netloc.partition(":")
        self.port = int(port or 80)
        self.timeout_s = timeout_s
        self.auth_key = auth_key
        self.transport = transport
        self.on_reconnect = on_reconnect
        self.reconnects = 0
        #: Formatted ``"<trace_id>:<span_id>"`` context stamped as
        #: ``X-Repro-Trace`` on every request while set (the scheduler
        #: points it at the active submit span).  Telemetry only.
        self.trace_context: str | None = None
        self._retry_policy = retry_policy
        self._wire = wire_fingerprint()
        self._rng = random.Random(
            zlib.crc32(f"{identity or netloc}".encode())
        )
        self._in_reconnect_hook = False
        # Outage bookkeeping persists *across* requests: an outage that
        # outlives one request's retry budget (the request raises, the
        # caller's loop retries later) is still a single outage, and
        # the reconnect hook fires exactly once when traffic recovers.
        self._outage_lock = threading.Lock()
        self._down_since: float | None = None
        self._down_failures = 0

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _policy(self):
        if self._retry_policy is None:
            self._retry_policy = _default_retry_policy()
        return self._retry_policy

    def _send_once(
        self, method: str, path: str, body: bytes | None, ctype: str
    ):
        """One HTTP exchange: sign, send, classify protocol rejections.

        Signing happens here — per delivery attempt — so every retry
        or duplicated transport delivery carries a fresh timestamp and
        nonce and never trips the broker's replay rejection.
        """
        headers = {WIRE_HEADER: self._wire, "Content-Type": ctype}
        if self.trace_context:
            headers[TRACE_HEADER] = self.trace_context
        if self.auth_key is not None:
            headers[AUTH_HEADER] = sign_request(
                self.auth_key, method, path, body or b""
            )
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            data = response.read()
            if response.status == 409:
                detail = {}
                try:
                    detail = json.loads(data)
                except (ValueError, UnicodeDecodeError):
                    pass
                raise WireMismatchError(
                    "broker rejected wire fingerprint "
                    f"(want {detail.get('want')}, got {detail.get('got')}) — "
                    "broker and workers must run the same repro revision"
                )
            if response.status == 401:
                raise WireAuthError(
                    f"broker rejected request auth for {path!r} — "
                    "check --auth-key-file / $REPRO_FLEET_AUTH_KEY"
                )
            return response.status, dict(response.getheaders()), data
        finally:
            conn.close()

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        ctype: str = "application/octet-stream",
    ):
        """Send with bounded retries; fatal protocol errors pass through.

        A request that exhausts its retry budget raises, but the outage
        stays recorded on the client — when a *later* request finally
        gets through, the reconnect fires once for the whole outage.
        """
        policy = self._policy()
        attempt = 0
        while True:
            attempt += 1
            try:
                if self.transport is not None:
                    out = self.transport(
                        self._send_once, method, path, body, ctype
                    )
                else:
                    out = self._send_once(method, path, body, ctype)
            except (WireMismatchError, WireAuthError):
                raise
            except RETRIABLE:
                with self._outage_lock:
                    if self._down_since is None:
                        self._down_since = time.monotonic()
                    self._down_failures += 1
                if attempt >= policy.max_attempts:
                    raise
                time.sleep(policy.backoff_s(attempt, self._rng))
                continue
            with self._outage_lock:
                recovered = self._down_since
                failures = self._down_failures
                self._down_since = None
                self._down_failures = 0
            if recovered is not None:
                self.reconnects += 1
                self._fire_reconnect(
                    failures, time.monotonic() - recovered
                )
            return out

    def _fire_reconnect(self, failures: int, outage_s: float) -> None:
        """Invoke the reconnect hook once, guarding against the hook's
        own requests recursing back here."""
        if self.on_reconnect is None or self._in_reconnect_hook:
            return
        self._in_reconnect_hook = True
        try:
            self.on_reconnect(failures, outage_s)
        except Exception:
            pass  # reporting must never take down the caller
        finally:
            self._in_reconnect_hook = False

    def _json_post(self, path: str, message: dict):
        status, headers, data = self._request(
            "POST", path, json.dumps(message).encode(), "application/json"
        )
        return status, headers, data

    # ------------------------------------------------------------------
    # broker API
    # ------------------------------------------------------------------

    def register(self, worker_id: str, capabilities: dict | None = None) -> dict:
        status, _, data = self._json_post(
            "/register",
            {"worker_id": worker_id, "capabilities": capabilities or {}},
        )
        if status != 200:
            raise BrokerError(f"register failed ({status}): {data!r}")
        return json.loads(data)

    def create_queue(self, queue: str) -> None:
        status, _, data = self._json_post("/queues", {"queue": queue})
        if status != 200:
            raise BrokerError(f"create_queue failed ({status}): {data!r}")

    def submit(
        self, queue: str, payload: bytes, task_id: str | None = None
    ) -> str:
        """Enqueue one payload under a client-generated task id.

        Generating the id here makes a retried submit (response lost to
        a broker crash) idempotent: the broker returns the existing
        task instead of queueing a twin.
        """
        task_id = task_id or uuid.uuid4().hex
        query = urllib.parse.urlencode(
            {"queue": queue, "task_id": task_id}
        )
        status, _, data = self._request("POST", f"/submit?{query}", payload)
        if status != 200:
            raise BrokerError(f"submit failed ({status}): {data!r}")
        return json.loads(data)["task_id"]

    def lease(
        self, worker_id: str, queues: list[str] | None = None
    ) -> LeaseGrant | None:
        status, headers, data = self._json_post(
            "/lease", {"worker_id": worker_id, "queues": queues}
        )
        if status != 200:
            raise BrokerError(f"lease failed ({status}): {data!r}")
        if headers.get("Content-Type") == "application/json":
            return None  # nothing to do
        return LeaseGrant(
            task_id=headers["X-Task-Id"],
            lease_id=headers["X-Lease-Id"],
            queue=headers["X-Queue"],
            ttl_s=float(headers["X-Lease-Ttl"]),
            attempt=int(headers["X-Attempt"]),
            payload=data,
            trace=headers.get(TRACE_HEADER) or None,
        )

    def heartbeat(
        self,
        lease_id: str,
        segment: bytes | None = None,
        reset: bool = False,
        offset: int | None = None,
        front: dict | None = None,
    ) -> bool:
        """Renew one lease, optionally shipping new cell-journal bytes.

        ``offset`` is the segment's start position in the worker's
        stream (bytes acknowledged since the last reset) — the broker
        uses it to drop re-delivered bytes when a retry or duplicate
        transport delivery lands twice.  ``front`` attaches the
        worker's running best-so-far summary (JSON-able dict) for the
        broker's fleet-wide ``/best`` aggregation.
        """
        if segment is None and not reset and front is None:
            status, _, _data = self._json_post(
                "/heartbeat", {"lease_id": lease_id}
            )
            return status == 200
        params = {
            "lease_id": lease_id,
            "reset": "1" if reset else "0",
            "offset": "" if offset is None else str(int(offset)),
        }
        if front is not None:
            params["front"] = json.dumps(front)
        query = urllib.parse.urlencode(params)
        status, _, _data = self._request(
            "POST", f"/heartbeat?{query}", segment or b""
        )
        return status == 200

    def fetch_journal(
        self, task_id: str, grant: bool = False
    ) -> tuple[bytes, int]:
        """``(streamed_journal_bytes, commits)`` buffered for one task."""
        query = urllib.parse.urlencode(
            {"task_id": task_id, "grant": "1" if grant else "0"}
        )
        status, headers, data = self._request("GET", f"/journal?{query}")
        if status != 200:
            raise BrokerError(f"journal failed ({status}): {data!r}")
        return data, int(headers.get("X-Commits", 0))

    def report_reconnect(
        self, worker: str, failures: int, outage_s: float
    ) -> None:
        """Tell the broker one outage was survived (fleet-journal row)."""
        self._json_post(
            "/reconnect",
            {
                "worker": worker,
                "failures": int(failures),
                "outage_s": float(outage_s),
            },
        )

    def complete(
        self,
        task_id: str,
        payload: bytes,
        lease_id: str | None = None,
        worker: str = "",
        exec_s: float = 0.0,
    ) -> str:
        query = urllib.parse.urlencode(
            {
                "task_id": task_id,
                "lease_id": lease_id or "",
                "worker": worker,
                "exec_s": f"{exec_s:.6f}",
            }
        )
        status, _, data = self._request("POST", f"/complete?{query}", payload)
        if status != 200:
            raise BrokerError(f"complete failed ({status}): {data!r}")
        return json.loads(data)["status"]

    def result(self, task_id: str) -> tuple[str, bytes | None]:
        """``(state, payload_or_None)``; raises ``KeyError`` on unknown."""
        status, headers, data = self._request(
            "GET", f"/result?task_id={urllib.parse.quote(task_id)}"
        )
        if status == 404:
            raise KeyError(task_id)
        if status == 202:
            return json.loads(data)["state"], None
        if status != 200:
            raise BrokerError(f"result failed ({status}): {data!r}")
        return headers.get("X-State", "done"), data

    def wait_result(
        self,
        task_id: str,
        poll_s: float = 0.05,
        timeout_s: float | None = None,
    ) -> bytes:
        """Block until one task's outcome lands (polling)."""
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        while True:
            _state, payload = self.result(task_id)
            if payload is not None:
                return payload
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"task {task_id} not completed within {timeout_s}s"
                )
            time.sleep(poll_s)

    def stats(self) -> dict:
        status, _, data = self._request("GET", "/stats")
        if status != 200:
            raise BrokerError(f"stats failed ({status}): {data!r}")
        return json.loads(data)

    def healthz(self) -> dict:
        """Unauthenticated liveness probe (WAL seq, uptime, restarts,
        WAL-fsync age)."""
        status, _, data = self._request("GET", "/healthz")
        if status != 200:
            raise BrokerError(f"healthz failed ({status}): {data!r}")
        return json.loads(data)

    def best(self) -> dict:
        """Unauthenticated fleet-wide best-so-far per session queue."""
        status, _, data = self._request("GET", "/best")
        if status != 200:
            raise BrokerError(f"best failed ({status}): {data!r}")
        return json.loads(data)

    def metrics_text(self) -> str:
        """Unauthenticated ``/metrics`` Prometheus exposition body."""
        status, _, data = self._request("GET", "/metrics")
        if status != 200:
            raise BrokerError(f"metrics failed ({status}): {data!r}")
        return data.decode("utf-8", "replace")

    def shutdown(self) -> None:
        try:
            self._json_post("/shutdown", {})
        except RETRIABLE:
            pass  # broker already gone — that is the goal
