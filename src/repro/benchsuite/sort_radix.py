"""SORT_RADIX — radix-4 integer sort (MachSuite ``sort/radix``).

Four phases per digit pass: histogram, local scan of bucket sums, global
prefix scan, and the scatter/update.  The phases share the data and
bucket arrays, so Algorithm 1 merges almost everything into one pruning
tree whose compatible factor set is tiny — while the *raw* space
(every unroll × partition × pipeline combination, including non-power-
of-two factors that real tools accept) is astronomically large.  The
paper quotes > 3.8 × 10^12 raw configurations pruned to ≈ 20 000 for
this benchmark; this model reproduces that regime (≈ 10^12 → ≈ 2 × 10^4).

Irregular scatter addressing makes its fidelity reports diverge
strongly, and the paper singles it out as hard for the non-GP baselines
("the irregular memory accesses of SORT_RADIX bring great challenges to
ANN, Boosting tree, and DAC19").
"""

from __future__ import annotations

from repro.hlsim.ir import (
    Array,
    ArrayAccess,
    FidelityProfile,
    InlineSite,
    Kernel,
    Loop,
    OpCounts,
)

N = 2048  # elements to sort
BUCKETS = 2048
SCAN_BLOCKS = 512
RADIX = 4

#: Rich factor menus (powers of two and their multiples of 3) — real
#: HLS tools accept arbitrary factors; almost all get pruned.
_WIDE = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64)
_MID = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32)
_NARROW = (1, 2, 4, 8, 16)


def build_sort_radix() -> Kernel:
    """Construct the SORT_RADIX kernel IR with its directive sites."""
    hist = Loop(
        name="hist",
        trip_count=N,
        body=OpCounts(add=2.0, logic=2.0, cmp=1.0, load=2.0, store=1.0),
        accesses=(
            ArrayAccess("a", index_loop="hist"),
            ArrayAccess("bucket", index_loop="hist", reads=1.0, writes=1.0),
        ),
        unroll_factors=_MID,
        pipeline_site=True,
        ii_candidates=(1, 2, 4),
    )
    local_scan_inner = Loop(
        name="lscan_j",
        trip_count=RADIX,
        body=OpCounts(add=1.0, load=1.0, store=1.0),
        accesses=(
            ArrayAccess(
                "bucket", index_loop="lscan_j", outer_loops=("lscan_i",),
                reads=1.0, writes=1.0,
            ),
        ),
        unroll_factors=(1, 2, 4),
        pipeline_site=True,
        ii_candidates=(1,),
    )
    local_scan = Loop(
        name="lscan_i",
        trip_count=SCAN_BLOCKS,
        children=(local_scan_inner,),
        unroll_factors=(1, 2, 4, 8),
    )
    sum_scan = Loop(
        name="sum_scan",
        trip_count=SCAN_BLOCKS,
        body=OpCounts(add=1.0, load=2.0, store=1.0),
        accesses=(
            ArrayAccess("sum", index_loop="sum_scan", reads=2.0, writes=1.0),
        ),
        unroll_factors=_NARROW,
        pipeline_site=True,
        ii_candidates=(1, 2),
    )
    update = Loop(
        name="update",
        trip_count=N,
        body=OpCounts(add=2.0, logic=2.0, load=3.0, store=1.0),
        accesses=(
            ArrayAccess("a", index_loop="update"),
            ArrayAccess("b", index_loop="update", reads=0.0, writes=1.0),
            ArrayAccess("bucket", index_loop="update", reads=1.0, writes=1.0),
        ),
        unroll_factors=_MID,
        pipeline_site=True,
        ii_candidates=(1, 2, 4),
    )
    copyback = Loop(
        name="copyback",
        trip_count=N,
        body=OpCounts(load=1.0, store=1.0),
        accesses=(
            ArrayAccess("b", index_loop="copyback"),
            ArrayAccess("a", index_loop="copyback", reads=0.0, writes=1.0),
        ),
        unroll_factors=_WIDE,
        pipeline_site=True,
        ii_candidates=(1,),
    )
    return Kernel(
        name="sort_radix",
        arrays=(
            Array("a", depth=N, partition_factors=_WIDE),
            Array("b", depth=N, partition_factors=_WIDE),
            Array("bucket", depth=BUCKETS, partition_factors=_MID),
            Array("sum", depth=SCAN_BLOCKS, partition_factors=_NARROW),
        ),
        loops=(hist, local_scan, sum_scan, update, copyback),
        inline_sites=(
            InlineSite("digit", call_overhead_cycles=1, lut_cost=90,
                       calls_per_kernel=8),
            InlineSite("scatter", call_overhead_cycles=3, lut_cost=220,
                       calls_per_kernel=4),
        ),
        target_clock_ns=10.0,
        fidelity=FidelityProfile(
            irregularity=0.45,
            noise=0.015,
            t_hls=330.0,
            t_syn=1250.0,
            t_impl=2600.0,
        ),
    )
