"""SPMV_ELLPACK — sparse matrix-vector multiply, ELLPACK format
(MachSuite ``spmv/ellpack``), applied twice (power-iteration style).

494 rows with a fixed bound of 10 non-zeros per row.  The inner
product loop gathers from the dense vector through the column-index
array — the data-dependent addressing that makes this kernel's
post-Synth/post-Impl reports diverge wildly from the HLS estimates
(paper Fig. 5(b)); the fidelity profile's irregularity is the largest
in the suite.
"""

from __future__ import annotations

from repro.hlsim.ir import (
    Array,
    ArrayAccess,
    FidelityProfile,
    InlineSite,
    Kernel,
    Loop,
    OpCounts,
)

ROWS = 494
L = 10  # bounded non-zeros per row


def _spmv_nest(suffix: str) -> Loop:
    inner = Loop(
        name=f"j{suffix}",
        trip_count=L,
        body=OpCounts(add=1.0, mul=1.0, load=3.0),
        accesses=(
            ArrayAccess("nzval", index_loop=f"j{suffix}", outer_loops=(f"i{suffix}",)),
            ArrayAccess("cols", index_loop=f"j{suffix}", outer_loops=(f"i{suffix}",)),
            ArrayAccess("vec", index_loop=f"j{suffix}"),
        ),
        unroll_factors=(1, 2, 5, 10),
        pipeline_site=True,
        ii_candidates=(1, 2, 4),
    )
    return Loop(
        name=f"i{suffix}",
        trip_count=ROWS,
        body=OpCounts(store=1.0),
        accesses=(
            ArrayAccess("out", index_loop=f"i{suffix}", reads=0.0, writes=1.0),
        ),
        children=(inner,),
        unroll_factors=(1, 2, 4, 8),
    )


def build_spmv_ellpack() -> Kernel:
    """Construct the SPMV_ELLPACK kernel IR with its directive sites."""
    init = Loop(
        name="init",
        trip_count=ROWS,
        body=OpCounts(store=1.0),
        accesses=(
            ArrayAccess("out", index_loop="init", reads=0.0, writes=1.0),
        ),
        unroll_factors=(1, 2, 4, 8),
        pipeline_site=True,
        ii_candidates=(1, 2),
    )
    # Matrix-stream staging buffer (DMA side): cheap in cycles, but its
    # banking joins the max-coupled clock path.
    stage = Loop(
        name="stage",
        trip_count=1024,
        body=OpCounts(load=1.0, store=1.0),
        accesses=(
            ArrayAccess("stagebuf", index_loop="stage", reads=1.0, writes=1.0),
        ),
        unroll_factors=(1, 2, 4, 5, 8, 10, 20),
        pipeline_site=True,
        ii_candidates=(1,),
    )
    return Kernel(
        name="spmv_ellpack",
        arrays=(
            Array("nzval", depth=ROWS * L, partition_factors=(1, 2, 5, 10, 20)),
            Array("cols", depth=ROWS * L, partition_factors=(1, 2, 5, 10, 20)),
            Array("vec", depth=ROWS, partition_factors=(1, 2, 5, 10)),
            Array("out", depth=ROWS, partition_factors=(1, 2, 4, 8)),
            Array("stagebuf", depth=1024,
                  partition_factors=(1, 2, 4, 5, 8, 10, 20)),
        ),
        loops=(init, _spmv_nest("1"), _spmv_nest("2"), stage),
        inline_sites=(
            InlineSite("dot", call_overhead_cycles=2, lut_cost=140,
                       calls_per_kernel=2),
        ),
        target_clock_ns=10.0,
        fidelity=FidelityProfile(
            irregularity=0.55,
            noise=0.02,
            t_hls=250.0,
            t_syn=1000.0,
            t_impl=2100.0,
        ),
    )
