"""GEMM — dense 64×64×64 matrix multiply (MachSuite ``gemm/ncubed``).

Structure: an initialization sweep over the output matrix, then the
classic three-deep multiply-accumulate nest.  The inner product loop is
the pipeline site; ``m1`` is indexed by the reduction loop while ``m2``
and ``prod`` are indexed by the column loop, so the pruning trees couple
{m1, k} and {m2, prod, j, init}.

GEMM is the paper's example of a *regular* kernel whose three fidelity
reports nearly overlap (Fig. 5(a)) — the fidelity profile's
irregularity is correspondingly small.
"""

from __future__ import annotations

from repro.hlsim.ir import (
    Array,
    ArrayAccess,
    FidelityProfile,
    InlineSite,
    Kernel,
    Loop,
    OpCounts,
)

N = 64  # matrix dimension


def build_gemm() -> Kernel:
    """Construct the GEMM kernel IR with its directive sites."""
    init = Loop(
        name="init",
        trip_count=N * N,
        body=OpCounts(store=1.0),
        accesses=(
            ArrayAccess("prod", index_loop="init", writes=1.0, reads=0.0),
        ),
        unroll_factors=(1, 2, 4, 8),
        pipeline_site=True,
        ii_candidates=(1, 2, 4, 8),
    )
    k_loop = Loop(
        name="k",
        trip_count=N,
        body=OpCounts(add=1.0, mul=1.0, load=2.0, store=1.0),
        accesses=(
            ArrayAccess("m1", index_loop="k", outer_loops=("i",)),
            ArrayAccess("m2", index_loop="j", outer_loops=("k",)),
            ArrayAccess(
                "prod", index_loop="j", outer_loops=("i",), reads=1.0, writes=1.0
            ),
        ),
        unroll_factors=(1, 2, 4, 8, 16),
        pipeline_site=True,
        ii_candidates=(1, 2, 4, 8),
    )
    j_loop = Loop(
        name="j", trip_count=N, children=(k_loop,), unroll_factors=(1, 2, 4, 8)
    )
    i_loop = Loop(
        name="i", trip_count=N, children=(j_loop,), unroll_factors=(1, 2, 4)
    )
    # DMA burst buffer: latency-minor, but wide bursts stress the clock
    # (its path joins the max-coupled timing model) and burn BRAM.
    io_burst = Loop(
        name="io_burst",
        trip_count=2048,
        body=OpCounts(load=1.0, store=1.0),
        accesses=(
            ArrayAccess("iobuf", index_loop="io_burst", reads=1.0, writes=1.0),
        ),
        unroll_factors=(1, 2, 3, 4, 6, 8, 12, 16),
        pipeline_site=True,
        ii_candidates=(1,),
    )
    return Kernel(
        name="gemm",
        arrays=(
            Array("m1", depth=N * N, partition_factors=(1, 2, 4, 8, 16)),
            Array("m2", depth=N * N, partition_factors=(1, 2, 4, 8)),
            Array("prod", depth=N * N, partition_factors=(1, 2, 4, 8)),
            Array("iobuf", depth=2048,
                  partition_factors=(1, 2, 3, 4, 6, 8, 12, 16)),
        ),
        loops=(init, i_loop, io_burst),
        inline_sites=(
            InlineSite("mac", call_overhead_cycles=2, lut_cost=180,
                       calls_per_kernel=4),
            InlineSite("burst_rw", call_overhead_cycles=4, lut_cost=240,
                       calls_per_kernel=2),
        ),
        target_clock_ns=10.0,
        fidelity=FidelityProfile(
            # Delay fidelities nearly overlap (paper Fig. 5(a)) but the
            # area/power reports still shift across stages.
            irregularity=0.08,
            area_irregularity=0.55,
            power_irregularity=0.45,
            noise=0.008,
            t_hls=280.0,
            t_syn=1100.0,
            t_impl=2300.0,
        ),
    )
