"""iSmart2 — object-detection DNN accelerator kernel (the paper's [19]).

A representative slice of the iSmartDNN pipeline: a 3×3 convolution
layer (output-channel × pixel × MAC-tap nest), a max-pool reduction,
and a fixed-point normalization epilogue with dividers.

The normalization loop is the resource hog: its divider array grows
linearly with the unroll factor, so the widest configurations exceed
the VC707's placement budget and *fail implementation* — the invalid
designs that the paper punishes at 10× the observed worst (Sec. IV-C).
Lower fidelities cannot see those failures, which is exactly the risk
multi-fidelity optimization has to manage.
"""

from __future__ import annotations

from repro.hlsim.ir import (
    Array,
    ArrayAccess,
    FidelityProfile,
    InlineSite,
    Kernel,
    Loop,
    OpCounts,
)

OUT_CHANNELS = 16
PIXELS = 256  # 16×16 output feature map
TAPS = 27  # 3×3×3 receptive field
FMAP = 4096


def build_ismart2() -> Kernel:
    """Construct the iSmart2 kernel IR with its directive sites."""
    mac = Loop(
        name="mac",
        trip_count=TAPS,
        body=OpCounts(add=1.0, mul=1.0, load=2.0),
        accesses=(
            ArrayAccess("wt", index_loop="mac", outer_loops=("oc",)),
            ArrayAccess("fin", index_loop="mac", outer_loops=("pix",)),
        ),
        unroll_factors=(1, 3, 9, 27),
        pipeline_site=True,
        ii_candidates=(1, 2, 4),
    )
    pix = Loop(
        name="pix",
        trip_count=PIXELS,
        body=OpCounts(add=1.0, store=1.0),
        accesses=(
            ArrayAccess("fout", index_loop="pix", outer_loops=("oc",),
                        reads=0.0, writes=1.0),
        ),
        children=(mac,),
        unroll_factors=(1, 2, 4, 8),
    )
    oc = Loop(
        name="oc", trip_count=OUT_CHANNELS, children=(pix,),
        unroll_factors=(1, 2, 4),
    )
    # The pooled values leave through a FIFO stream into the norm stage
    # (dataflow-style), so the pool loop has no partition-coupling access
    # to ``fpool`` — only the gather from ``fout``.
    pool = Loop(
        name="pool",
        trip_count=PIXELS * OUT_CHANNELS // 4,
        body=OpCounts(cmp=3.0, load=4.0, store=1.0),
        accesses=(
            ArrayAccess("fout", index_loop="pool", reads=4.0),
        ),
        unroll_factors=(1, 2, 4, 8),
        pipeline_site=True,
        ii_candidates=(1, 2),
    )
    norm = Loop(
        name="norm",
        trip_count=FMAP,
        body=OpCounts(div=2.0, mul=1.0, load=1.0, store=1.0),
        accesses=(
            ArrayAccess("fpool", index_loop="norm", reads=1.0, writes=1.0),
        ),
        unroll_factors=(1, 2, 4, 8, 16, 32, 64, 128),
        pipeline_site=True,
        ii_candidates=(1, 2, 4),
    )
    return Kernel(
        name="ismart2",
        arrays=(
            Array("wt", depth=OUT_CHANNELS * TAPS,
                  partition_factors=(1, 3, 9, 27)),
            Array("fin", depth=FMAP, partition_factors=(1, 3, 9, 27)),
            Array("fout", depth=FMAP, partition_factors=(1, 2, 4, 8)),
            Array("fpool", depth=FMAP,
                  partition_factors=(1, 2, 4, 8, 16, 32, 64, 128)),
        ),
        loops=(oc, pool, norm),
        inline_sites=(
            InlineSite("conv3x3", call_overhead_cycles=3, lut_cost=260,
                       calls_per_kernel=2),
            InlineSite("quant", call_overhead_cycles=2, lut_cost=150,
                       calls_per_kernel=1),
        ),
        target_clock_ns=10.0,
        fidelity=FidelityProfile(
            irregularity=0.30,
            noise=0.012,
            t_hls=420.0,
            t_syn=1500.0,
            t_impl=3200.0,
        ),
    )
