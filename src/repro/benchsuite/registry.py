"""Benchmark registry — the paper's six evaluation kernels (Sec. V-A)."""

from __future__ import annotations

from typing import Callable

from repro.benchsuite.gemm import build_gemm
from repro.benchsuite.ismart2 import build_ismart2
from repro.benchsuite.sort_radix import build_sort_radix
from repro.benchsuite.spmv_crs import build_spmv_crs
from repro.benchsuite.spmv_ellpack import build_spmv_ellpack
from repro.benchsuite.stencil3d import build_stencil3d
from repro.dse.space import DesignSpace
from repro.hlsim.ir import Kernel

#: Builders in the paper's Table I order.
BENCHMARKS: dict[str, Callable[[], Kernel]] = {
    "gemm": build_gemm,
    "ismart2": build_ismart2,
    "sort_radix": build_sort_radix,
    "spmv_ellpack": build_spmv_ellpack,
    "spmv_crs": build_spmv_crs,
    "stencil3d": build_stencil3d,
}


def benchmark_names() -> list[str]:
    """Names of all benchmarks, in Table I order."""
    return list(BENCHMARKS)


def get_kernel(name: str) -> Kernel:
    """Build a benchmark kernel by name."""
    try:
        builder = BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {benchmark_names()}"
        ) from None
    return builder()


def get_space(name: str, prune: bool = True) -> DesignSpace:
    """Build a benchmark's (pruned) design space by name."""
    return DesignSpace.from_kernel(get_kernel(name), prune=prune)
