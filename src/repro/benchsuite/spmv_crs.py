"""SPMV_CRS — sparse matrix-vector multiply, compressed-row storage
(MachSuite ``spmv/crs``), with a diagonal-scaling epilogue.

Row extents come from the delimiter array, so the inner loop's trip
count is data-dependent (modeled by its average); the gather through
``cols`` is irregular.  The scaling epilogue carries a divider — the
long-latency unit that stresses both the clock model and the resource
model when unrolled.
"""

from __future__ import annotations

from repro.hlsim.ir import (
    Array,
    ArrayAccess,
    FidelityProfile,
    InlineSite,
    Kernel,
    Loop,
    OpCounts,
)

ROWS = 494
NNZ = 1666
AVG_ROW = 8  # modeled trip count of the data-dependent inner loop


def build_spmv_crs() -> Kernel:
    """Construct the SPMV_CRS kernel IR with its directive sites."""
    inner = Loop(
        name="j",
        trip_count=AVG_ROW,
        body=OpCounts(add=1.0, mul=1.0, load=3.0),
        accesses=(
            ArrayAccess("val", index_loop="j", outer_loops=("i",)),
            ArrayAccess("cols", index_loop="j", outer_loops=("i",)),
            ArrayAccess("vec", index_loop="j"),
        ),
        unroll_factors=(1, 2, 4, 8),
        pipeline_site=True,
        ii_candidates=(1, 2, 4, 8),
    )
    rows = Loop(
        name="i",
        trip_count=ROWS,
        body=OpCounts(add=1.0, load=2.0, store=1.0),
        accesses=(
            ArrayAccess("rowdelim", index_loop="i", reads=2.0),
            ArrayAccess("out", index_loop="i", reads=0.0, writes=1.0),
        ),
        children=(inner,),
        unroll_factors=(1, 2, 4),
    )
    accumulate = Loop(
        name="acc",
        trip_count=ROWS,
        body=OpCounts(add=1.0, load=2.0, store=1.0),
        accesses=(
            ArrayAccess("out", index_loop="acc"),
            ArrayAccess("tmp", index_loop="acc", reads=1.0, writes=1.0),
        ),
        unroll_factors=(1, 2, 4, 8),
        pipeline_site=True,
        ii_candidates=(1, 2),
    )
    scale = Loop(
        name="scale",
        trip_count=ROWS,
        body=OpCounts(div=1.0, load=2.0, store=1.0),
        accesses=(
            ArrayAccess("tmp", index_loop="scale", reads=1.0, writes=1.0),
            ArrayAccess("diag", index_loop="scale"),
        ),
        unroll_factors=(1, 2, 4, 8),
        pipeline_site=True,
        ii_candidates=(1, 2, 4),
    )
    prefetch = Loop(
        name="prefetch",
        trip_count=832,
        body=OpCounts(load=1.0, store=1.0),
        accesses=(
            ArrayAccess("pfbuf", index_loop="prefetch", reads=1.0, writes=1.0),
        ),
        unroll_factors=(1, 2, 4, 8, 13, 16, 26),
        pipeline_site=True,
        ii_candidates=(1,),
    )
    return Kernel(
        name="spmv_crs",
        arrays=(
            Array("pfbuf", depth=832,
                  partition_factors=(1, 2, 4, 8, 13, 16, 26)),
            Array("val", depth=NNZ, partition_factors=(1, 2, 4, 8, 16)),
            Array("cols", depth=NNZ, partition_factors=(1, 2, 4, 8, 16)),
            Array("vec", depth=ROWS, partition_factors=(1, 2, 4, 8)),
            Array("rowdelim", depth=ROWS + 1, partition_factors=(1, 2, 4)),
            Array("out", depth=ROWS, partition_factors=(1, 2, 4, 8)),
            Array("tmp", depth=ROWS, partition_factors=(1, 2, 4, 8)),
            Array("diag", depth=ROWS, partition_factors=(1, 2, 4, 8)),
        ),
        loops=(rows, accumulate, scale, prefetch),
        inline_sites=(
            InlineSite("rowdot", call_overhead_cycles=2, lut_cost=160,
                       calls_per_kernel=2),
        ),
        target_clock_ns=10.0,
        fidelity=FidelityProfile(
            irregularity=0.45,
            noise=0.018,
            t_hls=260.0,
            t_syn=1050.0,
            t_impl=2200.0,
        ),
    )
