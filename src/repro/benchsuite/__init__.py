"""The six evaluation benchmarks: five MachSuite kernels + iSmart2."""

from repro.benchsuite.gemm import build_gemm
from repro.benchsuite.ismart2 import build_ismart2
from repro.benchsuite.registry import (
    BENCHMARKS,
    benchmark_names,
    get_kernel,
    get_space,
)
from repro.benchsuite.sort_radix import build_sort_radix
from repro.benchsuite.spmv_crs import build_spmv_crs
from repro.benchsuite.spmv_ellpack import build_spmv_ellpack
from repro.benchsuite.stencil3d import build_stencil3d

__all__ = [
    "BENCHMARKS",
    "benchmark_names",
    "build_gemm",
    "build_ismart2",
    "build_sort_radix",
    "build_spmv_crs",
    "build_spmv_ellpack",
    "build_stencil3d",
    "get_kernel",
    "get_space",
]
