"""STENCIL3D — 7-point 3-D stencil over a 32×32×32 grid
(MachSuite ``stencil/stencil3d``).

A boundary-copy prologue followed by the triple-nested interior sweep.
Both phases touch the same two grids, so the pruning tree ties the
boundary loop's unroll, the innermost sweep unroll and both grid
partitions to a single compatible factor.  Access patterns are regular;
fidelity divergence is modest.
"""

from __future__ import annotations

from repro.hlsim.ir import (
    Array,
    ArrayAccess,
    FidelityProfile,
    InlineSite,
    Kernel,
    Loop,
    OpCounts,
)

SIZE = 32
INTERIOR = SIZE - 2

#: Shared compatible-factor menu of grids and grid-indexing loops.
_GRID_FACTORS = (1, 2, 3, 5, 6, 10, 15, 30)


def build_stencil3d() -> Kernel:
    """Construct the STENCIL3D kernel IR with its directive sites."""
    boundary = Loop(
        name="boundary",
        trip_count=6 * SIZE * SIZE,
        body=OpCounts(load=1.0, store=1.0),
        accesses=(
            ArrayAccess("orig", index_loop="boundary"),
            ArrayAccess("sol", index_loop="boundary", reads=0.0, writes=1.0),
        ),
        unroll_factors=_GRID_FACTORS,
        pipeline_site=True,
        ii_candidates=(1, 2),
    )
    k_loop = Loop(
        name="k",
        trip_count=INTERIOR,
        body=OpCounts(add=7.0, mul=2.0, load=8.0, store=1.0),
        accesses=(
            ArrayAccess("orig", index_loop="k", outer_loops=("i", "j"), reads=7.0),
            ArrayAccess("sol", index_loop="k", outer_loops=("i", "j"),
                        reads=0.0, writes=1.0),
        ),
        unroll_factors=_GRID_FACTORS,
        pipeline_site=True,
        ii_candidates=(1, 2, 4),
    )
    j_loop = Loop(
        name="j", trip_count=INTERIOR, children=(k_loop,),
        unroll_factors=(1, 2, 3, 5, 6),
    )
    i_loop = Loop(
        name="i", trip_count=INTERIOR, children=(j_loop,),
        unroll_factors=(1, 2, 3),
    )
    halo = Loop(
        name="halo",
        trip_count=1024,
        body=OpCounts(load=1.0, store=1.0),
        accesses=(
            ArrayAccess("halobuf", index_loop="halo", reads=1.0, writes=1.0),
        ),
        unroll_factors=(1, 2, 4, 8, 16, 32),
        pipeline_site=True,
        ii_candidates=(1,),
    )
    return Kernel(
        name="stencil3d",
        arrays=(
            Array("halobuf", depth=1024,
                  partition_factors=(1, 2, 4, 8, 16, 32)),
            Array("orig", depth=SIZE ** 3, partition_factors=_GRID_FACTORS),
            Array("sol", depth=SIZE ** 3, partition_factors=_GRID_FACTORS),
            # Stencil coefficients: register-cached, freely partitionable.
            Array("coef", depth=2, width_bits=32, partition_factors=(1, 2)),
        ),
        loops=(boundary, i_loop, halo),
        inline_sites=(
            InlineSite("tap", call_overhead_cycles=1, lut_cost=110,
                       calls_per_kernel=2),
        ),
        target_clock_ns=10.0,
        fidelity=FidelityProfile(
            irregularity=0.20,
            area_irregularity=0.45,
            power_irregularity=0.40,
            noise=0.01,
            t_hls=300.0,
            t_syn=1150.0,
            t_impl=2400.0,
        ),
    )
