"""FPL18 baseline — linear multi-fidelity, independent-objective BO
(Lo & Chow, FPL'18 — the paper's [12]).

FPL18 shares Algorithm 2's skeleton (GP-based BO with multi-fidelity
selection) but differs in exactly the two modeling choices the paper
criticizes: the fidelities are chained *linearly* (Kennedy-O'Hagan
autoregression) and the objectives are modeled as *independent* GPs.
Re-using :class:`~repro.core.optimizer.CorrelatedMFBO` with both
ablation switches off gives a faithful re-implementation that shares
feature encodings, design spaces and the acquisition machinery — the
paper's fairness requirement.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.optimizer import CorrelatedMFBO, MFBOSettings
from repro.core.result import OptimizationResult
from repro.dse.space import DesignSpace
from repro.hlsim.flow import HlsFlow
from repro.obs.trace import JsonlTraceWriter


def fpl18_settings(base: MFBOSettings | None = None) -> MFBOSettings:
    """Derive FPL18 settings from a base configuration.

    Only the two modeling switches differ from the base; every other
    knob (budgets, penalties, hot-path switches, seed) carries over, so
    newly added settings are inherited automatically.
    """
    base = base or MFBOSettings()
    return replace(base, correlated=False, nonlinear=False)


def run_fpl18(
    space: DesignSpace,
    flow: HlsFlow,
    settings: MFBOSettings | None = None,
    tracer: JsonlTraceWriter | None = None,
) -> OptimizationResult:
    """Run the FPL18 baseline on a design space."""
    optimizer = CorrelatedMFBO(
        space, flow, settings=fpl18_settings(settings), method_name="fpl18",
        tracer=tracer,
    )
    return optimizer.run()
