"""Random-search reference: sample, run the full flow, keep the Pareto set.

Not part of the paper's Table I, but the canonical sanity baseline: any
model-based method must beat it at equal evaluation budget, and several
tests assert exactly that.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import collect_training_data
from repro.core.result import OptimizationResult
from repro.dse.space import DesignSpace
from repro.hlsim.flow import HlsFlow
from repro.hlsim.reports import Fidelity


def run_random_search(
    space: DesignSpace,
    flow: HlsFlow,
    rng: np.random.Generator,
    n_evals: int = 48,
    method_name: str = "random",
) -> OptimizationResult:
    """Evaluate ``n_evals`` random configurations at full fidelity."""
    n_evals = min(n_evals, len(space))
    indices = space.sample_indices(rng, n_evals)
    Y, _valid, runtime = collect_training_data(space, flow, indices)
    return OptimizationResult(
        kernel_name=space.kernel.name,
        method=method_name,
        cs_indices=indices,
        cs_values=Y,
        cs_fidelities=[Fidelity.IMPL] * len(indices),
        history=[],
        total_runtime_s=runtime,
        evaluation_counts={"hls": n_evals, "syn": n_evals, "impl": n_evals},
    )
