"""The paper's comparison methods: FPL18, DAC19, ANN, Boosting tree."""

from repro.baselines.ann import MLPRegressor
from repro.baselines.boosting import GradientBoostingRegressor, RegressionTree
from repro.baselines.common import (
    DEFAULT_TRAIN_SIZE,
    collect_training_data,
    run_offline_regression,
)
from repro.baselines.dac19 import RidgeRegressor, run_dac19
from repro.baselines.fpl18 import fpl18_settings, run_fpl18
from repro.baselines.random_search import run_random_search

__all__ = [
    "DEFAULT_TRAIN_SIZE",
    "GradientBoostingRegressor",
    "MLPRegressor",
    "RegressionTree",
    "RidgeRegressor",
    "collect_training_data",
    "fpl18_settings",
    "run_dac19",
    "run_fpl18",
    "run_offline_regression",
    "run_random_search",
]
