"""Gradient-boosted regression trees (the paper's "Boosting tree" / BT
baseline, refs [7]-[9], XGBoost-style but implemented from scratch).

CART regression trees with exact split search, fitted to the residuals
of a shrinking ensemble.  The paper sweeps depth in 1..6 and learning
rate in {0.1, ..., 0.5}; those are constructor arguments here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _Node:
    """One tree node: either a leaf (value) or a split."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """CART regression tree with squared-error splits."""

    def __init__(self, max_depth: int = 3, min_samples_leaf: int = 2):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._root: _Node | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on sample count")
        self._root = self._build(X, y, depth=0)
        return self

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold = split
        left_mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[left_mask], y[left_mask], depth + 1)
        node.right = self._build(X[~left_mask], y[~left_mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, y: np.ndarray
    ) -> tuple[int, float] | None:
        n, d = X.shape
        best_gain = 1e-12
        best: tuple[int, float] | None = None
        base_sse = float(np.sum((y - y.mean()) ** 2))
        for feature in range(d):
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y[order]
            # Prefix sums give every split's SSE in O(n).
            csum = np.cumsum(ys)
            csq = np.cumsum(ys * ys)
            total, total_sq = csum[-1], csq[-1]
            for i in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if i < n and xs[i - 1] == xs[i]:
                    continue  # cannot split between equal values
                nl, nr = i, n - i
                sl, sr = csum[i - 1], total - csum[i - 1]
                ql, qr = csq[i - 1], total_sq - csq[i - 1]
                sse = (ql - sl * sl / nl) + (qr - sr * sr / nr)
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain = gain
                    threshold = 0.5 * (xs[i - 1] + xs[min(i, n - 1)])
                    best = (feature, float(threshold))
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("RegressionTree is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
                assert node is not None
            out[i] = node.value
        return out


class GradientBoostingRegressor:
    """Least-squares gradient boosting over regression trees."""

    def __init__(
        self,
        n_estimators: int = 120,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        min_samples_leaf: int = 2,
        subsample: float = 1.0,
        rng: np.random.Generator | None = None,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.rng = rng or np.random.default_rng(0)
        self._base: float = 0.0
        self._trees: list[RegressionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        self._base = float(y.mean())
        self._trees = []
        current = np.full_like(y, self._base)
        n = len(y)
        for _ in range(self.n_estimators):
            residual = y - current
            if self.subsample < 1.0:
                k = max(2 * self.min_samples_leaf, int(self.subsample * n))
                idx = self.rng.choice(n, size=min(k, n), replace=False)
            else:
                idx = np.arange(n)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(X[idx], residual[idx])
            self._trees.append(tree)
            current = current + self.learning_rate * tree.predict(X)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("GradientBoostingRegressor is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out = np.full(X.shape[0], self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(X)
        return out

    @property
    def n_trees(self) -> int:
        return len(self._trees)
