"""Shared driver for the offline-regression baselines (ANN / BT / DAC19).

These methods (paper Sec. V-A) do not iterate: they sample a training
set, run the *full* flow (up to implementation) on it, fit one regressor
per objective, predict the whole design space and declare the predicted
Pareto set as the learned Pareto set.  The simulated runtime is the cost
of the training-set flow runs — for ANN and BT that is 48 full runs
(the paper's "number of initialization configurations is 48").
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.core.pareto import pareto_mask
from repro.core.result import OptimizationResult
from repro.dse.space import DesignSpace
from repro.hlsim.flow import HlsFlow
from repro.hlsim.reports import Fidelity, NUM_OBJECTIVES

#: The paper's training-set size for the regression baselines.
DEFAULT_TRAIN_SIZE = 48


class Regressor(Protocol):
    """Anything with scikit-style fit/predict over 1-D targets."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Regressor": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...


RegressorFactory = Callable[[int], Regressor]


def collect_training_data(
    space: DesignSpace,
    flow: HlsFlow,
    indices: list[int],
    upto: Fidelity = Fidelity.IMPL,
    invalid_penalty: float = 10.0,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Run the flow on a set of configurations and assemble targets.

    Returns ``(Y, valid, runtime)``: the objective matrix at fidelity
    ``upto`` with invalid designs punished at ``invalid_penalty ×`` the
    worst valid observation (paper Sec. IV-C), the validity mask, and
    the total simulated runtime.
    """
    rows: list[np.ndarray] = []
    valids: list[bool] = []
    runtime = 0.0
    for index in indices:
        result = flow.run(space[index], upto=upto)
        runtime += result.total_runtime_s
        report = result.report_at(upto)
        rows.append(report.objectives())
        valids.append(report.valid)
    Y = np.vstack(rows)
    valid = np.array(valids)
    if valid.any() and not valid.all():
        worst = Y[valid].max(axis=0)
        Y[~valid] = worst * invalid_penalty
    return Y, valid, runtime


def run_offline_regression(
    space: DesignSpace,
    flow: HlsFlow,
    regressor_factory: RegressorFactory,
    method_name: str,
    rng: np.random.Generator,
    n_train: int = DEFAULT_TRAIN_SIZE,
    extra_runtime_factor: float = 1.0,
) -> OptimizationResult:
    """Train per-objective regressors and return the predicted Pareto set.

    ``regressor_factory(objective_index)`` builds one fresh regressor
    per objective.  ``extra_runtime_factor`` scales the reported runtime
    (DAC19's multiple training sets cost 7× on average — paper Sec. V-C).
    """
    n_train = min(n_train, len(space))
    train_idx = space.sample_indices(rng, n_train)
    Y_train, _valid, runtime = collect_training_data(space, flow, train_idx)
    X_train = space.features[train_idx]

    predictions = np.empty((len(space), NUM_OBJECTIVES))
    for objective in range(NUM_OBJECTIVES):
        model = regressor_factory(objective)
        model.fit(X_train, Y_train[:, objective])
        predictions[:, objective] = model.predict(space.features)

    mask = pareto_mask(predictions)
    learned = [i for i in range(len(space)) if mask[i]]
    return OptimizationResult(
        kernel_name=space.kernel.name,
        method=method_name,
        cs_indices=learned,
        cs_values=predictions[mask],
        cs_fidelities=[Fidelity.IMPL] * len(learned),
        history=[],
        total_runtime_s=runtime * extra_runtime_factor,
        evaluation_counts={"hls": n_train, "syn": n_train, "impl": n_train},
    )
