"""DAC19 baseline — predictive model-based HLS DSE (paper's [20]).

Liu, Lau & Schafer (DAC'19) accelerate FPGA prototyping by regressing
post-implementation quality from cheap reports.  As the paper notes,
their setup transfers here by treating the post-HLS reports as the
"existing designs": the model maps ``[directive features, post-HLS
reports]`` to post-implementation reports.

Per the paper's experimental protocol (Sec. V-B/V-C):

- the number of training sets is a hyperparameter in {3, ..., 11}, each
  set the size of the ANN training set, so the *average* running time is
  ``(3 + 11) / 2 = 7×`` the ANN baseline's;
- post-HLS reports exist only for the configurations that were actually
  run (the training sets) — the paper's runtime accounting (7× ANN, no
  whole-space HLS sweep) rules out free HLS reports for the full space.
  Prediction is therefore two-stage: a model of the post-HLS reports
  from the directive features, composed with the transfer model
  ``[features, HLS reports] -> post-Impl reports``.

The regressors are ridge models on quadratic features — linear-family
models as in the original work.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import DEFAULT_TRAIN_SIZE, collect_training_data
from repro.core.pareto import pareto_mask
from repro.core.result import OptimizationResult
from repro.dse.space import DesignSpace
from repro.hlsim.flow import HlsFlow
from repro.hlsim.reports import Fidelity, NUM_OBJECTIVES


class RidgeRegressor:
    """Closed-form ridge regression with feature standardization."""

    def __init__(self, alpha: float = 1e-2):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self._coef: np.ndarray | None = None
        self._stats: tuple[np.ndarray, np.ndarray, float, float] | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        x_mean, x_std = X.mean(axis=0), X.std(axis=0)
        x_std[x_std < 1e-12] = 1.0
        y_mean, y_std = float(y.mean()), float(max(y.std(), 1e-12))
        Xz = (X - x_mean) / x_std
        yz = (y - y_mean) / y_std
        d = Xz.shape[1]
        A = Xz.T @ Xz + self.alpha * np.eye(d)
        self._coef = np.linalg.solve(A, Xz.T @ yz)
        self._stats = (x_mean, x_std, y_mean, y_std)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._coef is None or self._stats is None:
            raise RuntimeError("RidgeRegressor is not fitted")
        x_mean, x_std, y_mean, y_std = self._stats
        Xz = (np.atleast_2d(np.asarray(X, dtype=float)) - x_mean) / x_std
        return y_mean + y_std * (Xz @ self._coef)


def _quadratic_features(X: np.ndarray) -> np.ndarray:
    """Augment features with their squares (linear-family capacity)."""
    return np.hstack([X, X * X])


def run_dac19(
    space: DesignSpace,
    flow: HlsFlow,
    rng: np.random.Generator,
    n_sets: int = 7,
    set_size: int = DEFAULT_TRAIN_SIZE,
    method_name: str = "dac19",
) -> OptimizationResult:
    """Run the DAC19 transfer baseline.

    ``n_sets`` training sets of ``set_size`` configurations each are run
    through the full flow (7 sets by default — the paper's average over
    the 3..11 hyperparameter range); the ridge models are trained on
    their union and used to predict post-implementation reports for the
    entire space from its post-HLS reports.
    """
    if n_sets < 1:
        raise ValueError("n_sets must be >= 1")
    total = min(n_sets * set_size, len(space))
    train_idx = space.sample_indices(rng, total)
    Y_train, _valid, runtime = collect_training_data(space, flow, train_idx)

    # Stage A: post-HLS reports from features (HLS reports exist only
    # for the configurations that were actually run).
    hls_train = flow.sweep([space[i] for i in train_idx], Fidelity.HLS)
    hls_scale = np.abs(hls_train).max(axis=0)
    hls_scale[hls_scale < 1e-12] = 1.0
    feat_all = _quadratic_features(space.features)
    feat_train = feat_all[train_idx]
    hls_pred = np.empty((len(space), hls_train.shape[1]))
    for objective in range(hls_train.shape[1]):
        model = RidgeRegressor()
        model.fit(feat_train, hls_train[:, objective] / hls_scale[objective])
        hls_pred[:, objective] = model.predict(feat_all)
    # The training configurations keep their measured HLS reports.
    hls_pred[train_idx] = hls_train / hls_scale

    # Stage B: transfer model [features, HLS reports] -> post-Impl.
    inputs_all = _quadratic_features(np.hstack([space.features, hls_pred]))
    inputs_train = inputs_all[train_idx]
    predictions = np.empty((len(space), NUM_OBJECTIVES))
    for objective in range(NUM_OBJECTIVES):
        model = RidgeRegressor()
        model.fit(inputs_train, Y_train[:, objective])
        predictions[:, objective] = model.predict(inputs_all)

    mask = pareto_mask(predictions)
    learned = [i for i in range(len(space)) if mask[i]]
    return OptimizationResult(
        kernel_name=space.kernel.name,
        method=method_name,
        cs_indices=learned,
        cs_values=predictions[mask],
        cs_fidelities=[Fidelity.IMPL] * len(learned),
        history=[],
        total_runtime_s=runtime,
        evaluation_counts={"hls": total, "syn": total, "impl": total},
    )
