"""Artificial neural network baseline (paper Sec. V-A, refs [7]-[9]).

A from-scratch numpy MLP with two hidden layers — the paper's ANN
baseline configuration — trained with Adam on standardized features and
targets.  The paper sweeps training length over {500, 1000, ..., 5000}
epochs; :class:`MLPRegressor` exposes the same knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


@dataclass
class _AdamState:
    m: list[np.ndarray] = field(default_factory=list)
    v: list[np.ndarray] = field(default_factory=list)
    t: int = 0


class MLPRegressor:
    """Two-hidden-layer ReLU MLP trained with Adam (full-batch)."""

    def __init__(
        self,
        hidden: tuple[int, int] = (32, 32),
        epochs: int = 2000,
        learning_rate: float = 5e-3,
        weight_decay: float = 1e-4,
        rng: np.random.Generator | None = None,
    ):
        if len(hidden) != 2:
            raise ValueError("the paper's ANN has exactly 2 hidden layers")
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        self.hidden = hidden
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.rng = rng or np.random.default_rng(0)
        self._weights: list[np.ndarray] | None = None
        self._biases: list[np.ndarray] | None = None
        self._x_stats: tuple[np.ndarray, np.ndarray] | None = None
        self._y_stats: tuple[float, float] | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on sample count")
        x_mean, x_std = X.mean(axis=0), X.std(axis=0)
        x_std[x_std < 1e-12] = 1.0
        y_mean, y_std = float(y.mean()), float(y.std())
        if y_std < 1e-12:
            y_std = 1.0
        self._x_stats = (x_mean, x_std)
        self._y_stats = (y_mean, y_std)
        Xz = (X - x_mean) / x_std
        yz = (y - y_mean) / y_std

        sizes = [X.shape[1], *self.hidden, 1]
        weights = [
            self.rng.normal(0.0, np.sqrt(2.0 / sizes[i]), (sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        biases = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]
        adam = _AdamState(
            m=[np.zeros_like(w) for w in weights + biases],
            v=[np.zeros_like(w) for w in weights + biases],
        )
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        for _ in range(self.epochs):
            # Forward.
            acts = [Xz]
            for layer, (W, b) in enumerate(zip(weights, biases)):
                pre = acts[-1] @ W + b
                acts.append(pre if layer == len(weights) - 1 else _relu(pre))
            pred = acts[-1].ravel()
            err = pred - yz
            # Backward.
            grad_ws: list[np.ndarray] = [np.empty(0)] * len(weights)
            grad_bs: list[np.ndarray] = [np.empty(0)] * len(biases)
            delta = (2.0 / len(yz)) * err[:, None]
            for layer in reversed(range(len(weights))):
                grad_ws[layer] = (
                    acts[layer].T @ delta + self.weight_decay * weights[layer]
                )
                grad_bs[layer] = delta.sum(axis=0)
                if layer > 0:
                    delta = (delta @ weights[layer].T) * (acts[layer] > 0)
            # Adam update.
            adam.t += 1
            params = weights + biases
            grads = grad_ws + grad_bs
            for k, (p, g) in enumerate(zip(params, grads)):
                adam.m[k] = beta1 * adam.m[k] + (1 - beta1) * g
                adam.v[k] = beta2 * adam.v[k] + (1 - beta2) * g * g
                m_hat = adam.m[k] / (1 - beta1 ** adam.t)
                v_hat = adam.v[k] / (1 - beta2 ** adam.t)
                p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

        self._weights, self._biases = weights, biases
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._weights is None or self._x_stats is None or self._y_stats is None:
            raise RuntimeError("MLPRegressor is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        x_mean, x_std = self._x_stats
        out = (X - x_mean) / x_std
        last = len(self._weights) - 1
        for layer, (W, b) in enumerate(zip(self._weights, self._biases)):
            out = out @ W + b
            if layer != last:
                out = _relu(out)
        y_mean, y_std = self._y_stats
        return y_mean + y_std * out.ravel()
