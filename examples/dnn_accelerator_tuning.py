#!/usr/bin/env python
"""DNN accelerator tuning with invalid designs (the iSmart2 scenario).

The iSmart2 object-detection accelerator (paper Sec. V-A) is the suite's
resource hog: its widest normalization configurations exceed the VC707's
placement budget and *fail implementation*.  Lower fidelities cannot see
those failures — the exact risk the paper's multi-fidelity flow manages
by punishing invalid designs at 10× the observed worst (Sec. IV-C).

The example shows:

1. how many configurations of the pruned space are genuinely invalid,
2. that the optimizer encounters and punishes them yet still converges,
3. the learned power/delay/LUT trade-off front of valid designs.

Run:  python examples/dnn_accelerator_tuning.py
"""

import numpy as np

from repro.benchsuite import get_kernel
from repro.core.optimizer import CorrelatedMFBO, MFBOSettings
from repro.dse.space import DesignSpace
from repro.hlsim.flow import HlsFlow
from repro.hlsim.reports import Fidelity


def main() -> None:
    kernel = get_kernel("ismart2")
    space = DesignSpace.from_kernel(kernel)
    flow = HlsFlow.for_space(space)

    # 1. Survey validity on a sample of the space (full sweep works too,
    #    the simulator is fast; a sample keeps the demo snappy).
    rng = np.random.default_rng(0)
    sample = space.sample_indices(rng, 400)
    valid = flow.validity([space[i] for i in sample])
    print(f"design space: {len(space)} configurations, "
          f"~{100 * np.mean(~valid):.0f}% fail placement/routing")

    # Show one failing configuration and what each stage reported.
    bad = next(i for i, ok in zip(sample, valid) if not ok)
    result = flow.run(space[bad], upto=Fidelity.IMPL)
    print("\nan invalid design, stage by stage:")
    for report in result.reports:
        print(
            f"  {report.stage.short_name:>4}: "
            f"LUT util {report.lut_util:6.1%}  "
            f"clock {report.clock_ns:5.2f} ns  valid={report.valid}"
        )
    print("  (HLS and SYN see nothing wrong — only IMPL fails)")

    # 2. Optimize; invalid picks get punished 10x worst and the models
    #    learn to stay away.
    settings = MFBOSettings(n_iter=15, candidate_pool=128, seed=1)
    run = CorrelatedMFBO(space, flow, settings=settings).run()
    punished = [r for r in run.history if not r.valid]
    print(f"\nBO evaluations: {len(run.history)}, "
          f"invalid encountered: {len(punished)}")
    print(f"fidelity mix: {run.fidelity_histogram()}")

    # 3. Learned front (valid entries only).
    print("\nlearned Pareto front (true reports):")
    print(f"{'power (W)':>10} {'delay (us)':>12} {'LUT util':>9}")
    for idx in run.pareto_indices():
        report = flow.run(space[idx], upto=Fidelity.IMPL).highest
        if report.valid:
            print(
                f"{report.power_w:>10.3f} {report.delay_us:>12.1f} "
                f"{report.lut_util:>9.2%}"
            )


if __name__ == "__main__":
    main()
