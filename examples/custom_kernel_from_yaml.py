#!/usr/bin/env python
"""Bring your own kernel: define a design space in YAML, then optimize.

This is how the paper sets up its experiments ("the initial design
space is defined by specifying all of the possible locations of
directives and their factors in YAML files", Sec. V).  The example
models a small FIR filter with a coefficient array, a shift register
and an accumulation loop, then runs the optimizer on it and compares
the learned front against a brute-force sweep (affordable here because
the pruned space is small).

Run:  python examples/custom_kernel_from_yaml.py
"""


from repro.core.optimizer import CorrelatedMFBO, MFBOSettings
from repro.core.pareto import pareto_front
from repro.dse.space import DesignSpace
from repro.dse.spec import loads_kernel
from repro.hlsim.flow import HlsFlow, ground_truth
from repro.metrics.adrs import adrs

FIR_SPEC = """
kernel: fir128
target_clock_ns: 10.0
fidelity:
  irregularity: 0.35
  noise: 0.01
  t_hls: 120.0
  t_syn: 500.0
  t_impl: 1100.0
arrays:
  - {name: coeff, depth: 128, partition_factors: [1, 2, 4, 8, 16]}
  - {name: shift, depth: 128, partition_factors: [1, 2, 4, 8, 16]}
  - {name: samples, depth: 4096, partition_factors: [1, 2, 4, 8]}
loops:
  - name: sample_loop
    trip: 4096
    body: {load: 1, store: 1}
    unroll: [1, 2, 4, 8]
    accesses:
      - {array: samples, index_loop: sample_loop}
    children:
      - name: tap_loop
        trip: 128
        body: {add: 1, mul: 1, load: 2, store: 1}
        unroll: [1, 2, 4, 8, 16]
        pipeline: {ii: [1, 2, 4]}
        accesses:
          - {array: coeff, index_loop: tap_loop, outer_loops: [sample_loop]}
          - {array: shift, index_loop: tap_loop, reads: 1, writes: 1}
inline_sites:
  - {name: mac_unit, call_overhead_cycles: 2, lut_cost: 160, calls: 1}
"""


def main() -> None:
    kernel = loads_kernel(FIR_SPEC)
    space = DesignSpace.from_kernel(kernel)
    flow = HlsFlow.for_space(space)
    print(space.describe())

    result = CorrelatedMFBO(
        space, flow,
        settings=MFBOSettings(n_iter=12, candidate_pool=96, seed=7),
    ).run()

    # The simulator makes exhaustive ground truth affordable, so we can
    # measure how close the learned front really is (Eq. (11)).
    Y_true, valid = ground_truth(space, flow)
    true_front = pareto_front(Y_true[valid])
    learned_true = Y_true[result.pareto_indices()]
    score = adrs(true_front, learned_true)

    print(f"\npruned design space:   {len(space)} configurations")
    print(f"true Pareto front:     {len(true_front)} points")
    print(f"learned Pareto points: {len(learned_true)}")
    print(f"ADRS vs. truth:        {score:.4f}")
    print(f"simulated tool time:   {result.total_runtime_s / 3600:.2f} h")
    full_sweep_h = flow.stage_time(flow.run(space[0]).highest.stage) * len(
        space
    ) / 3600.0
    print(f"(exhaustive impl sweep would cost ~{full_sweep_h:.0f} h)")


if __name__ == "__main__":
    main()
