#!/usr/bin/env python
"""Export the six evaluation benchmarks as YAML design-space specs.

The paper defines its design spaces in YAML files (Sec. V); this script
writes the suite's kernels out in that format (to ``./specs`` by
default) so they can be inspected, edited and re-loaded with
``repro.dse.spec.load_kernel`` — the starting point for adapting the
flow to your own kernels.

Run:  python examples/export_benchmark_specs.py [output_dir]
"""

import sys
from pathlib import Path

from repro.benchsuite import benchmark_names, get_kernel
from repro.dse.space import DesignSpace
from repro.dse.spec import dump_kernel, load_kernel


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "specs")
    out_dir.mkdir(parents=True, exist_ok=True)
    for name in benchmark_names():
        kernel = get_kernel(name)
        path = out_dir / f"{name}.yaml"
        dump_kernel(kernel, path)
        # Round-trip check + size report.
        again = load_kernel(path)
        assert again == kernel, f"{name}: YAML round-trip mismatch"
        space = DesignSpace.from_kernel(again)
        print(
            f"wrote {path}  ({len(space.schema)} sites, "
            f"raw {space.schema.raw_size():.2e} -> pruned {len(space)})"
        )


if __name__ == "__main__":
    main()
