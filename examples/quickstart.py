#!/usr/bin/env python
"""Quickstart: optimize the HLS directives of GEMM in one page.

Walks the full pipeline of the paper on the GEMM benchmark:

1. build the kernel IR and prune its design space (Algorithm 1),
2. run the correlated multi-objective multi-fidelity BO loop
   (Algorithm 2) against the simulated Vivado flow,
3. print the learned Pareto-optimal directive configurations.

Run:  python examples/quickstart.py
"""

from repro.benchsuite import get_kernel
from repro.core.optimizer import CorrelatedMFBO, MFBOSettings
from repro.dse.space import DesignSpace
from repro.hlsim.flow import HlsFlow


def main() -> None:
    kernel = get_kernel("gemm")
    space = DesignSpace.from_kernel(kernel)  # Algorithm 1 inside
    print(space.describe())
    print()

    flow = HlsFlow.for_space(space)  # the simulated 3-stage FPGA flow
    settings = MFBOSettings(
        n_init=(8, 6, 4),   # nested random init: X_impl ⊆ X_syn ⊆ X_hls
        n_iter=15,          # paper uses 40; 15 keeps this demo quick
        candidate_pool=128,
        seed=2021,
    )
    optimizer = CorrelatedMFBO(space, flow, settings=settings)
    result = optimizer.run()

    print(f"evaluations per fidelity: {result.evaluation_counts}")
    print(f"simulated tool time:      {result.total_runtime_s / 3600:.2f} h")
    print(f"candidate set size:       {len(result.cs_indices)}")
    print()
    print("learned Pareto-optimal configurations:")
    header = f"{'power (W)':>10} {'delay (us)':>11} {'LUT util':>9}   directives"
    print(header)
    print("-" * len(header))
    for idx, values in zip(result.pareto_indices(), result.pareto_values()):
        directives = space.schema.config_to_dict(space[idx])
        active = {k: v for k, v in directives.items()
                  if v not in (0, 1) or k.startswith("inline")}
        print(
            f"{values[0]:>10.3f} {values[1]:>11.1f} {values[2]:>9.4f}   "
            f"{active}"
        )


if __name__ == "__main__":
    main()
