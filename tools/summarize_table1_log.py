#!/usr/bin/env python
"""Summarize a (possibly partial) table1 run log into Table-I blocks.

``python -m repro.experiments.table1`` prints one line per
(benchmark, method, repeat); this helper aggregates whatever lines exist
in a log file into per-benchmark mean ADRS / std / time, normalized to
ANN where ANN is available.  Useful for peeking at long runs and for
assembling EXPERIMENTS.md from an interrupted run.

Usage: python tools/summarize_table1_log.py table1_run.log
"""

import re
import sys
from collections import defaultdict

import numpy as np

LINE = re.compile(
    r"^\s*(\w+)/(\w+) repeat (\d+): ADRS=([0-9.]+) time=([0-9.]+)h"
)
METHODS = ("ours", "fpl18", "ann", "bt", "dac19")


def parse(path: str):
    data: dict[str, dict[str, list[tuple[float, float]]]] = defaultdict(
        lambda: defaultdict(list)
    )
    with open(path) as handle:
        for line in handle:
            match = LINE.match(line)
            if match:
                bench, method, _rep, adrs, time_h = match.groups()
                data[bench][method].append((float(adrs), float(time_h)))
    return data


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "table1_run.log"
    data = parse(path)
    if not data:
        print(f"no result lines found in {path}")
        return 1

    header = f"{'benchmark':<14}" + "".join(f"{m:>9}" for m in METHODS)
    for metric, pick in (
        ("ADRS (mean)", lambda rows: np.mean([a for a, _ in rows])),
        ("ADRS (std)", lambda rows: np.std([a for a, _ in rows])),
        ("time (h)", lambda rows: np.mean([t for _, t in rows])),
    ):
        print(metric)
        print("  " + header)
        for bench, per_method in data.items():
            cells = []
            for m in METHODS:
                rows = per_method.get(m)
                cells.append(f"{pick(rows):>9.3f}" if rows else f"{'-':>9}")
            print("  " + f"{bench:<14}" + "".join(cells))
        print()

    print("normalized to ANN (where available)")
    print("  " + header)
    for bench, per_method in data.items():
        if "ann" not in per_method:
            continue
        anchor = np.mean([a for a, _ in per_method["ann"]])
        cells = []
        for m in METHODS:
            rows = per_method.get(m)
            value = np.mean([a for a, _ in rows]) / anchor if rows else None
            cells.append(f"{value:>9.2f}" if value is not None else f"{'-':>9}")
        print("  " + f"{bench:<14}" + "".join(cells))
    return 0


if __name__ == "__main__":
    sys.exit(main())
