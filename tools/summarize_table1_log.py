#!/usr/bin/env python
"""DEPRECATED shim — use ``python -m repro.obs.report --log FILE``.

The table1 console-log aggregation moved into :mod:`repro.obs.report`
(which also summarizes trace directories and gates regressions between
runs).  This entry point keeps the old invocation working::

    python tools/summarize_table1_log.py table1_run.log
"""

import sys
from pathlib import Path

try:
    from repro.obs import report
except ImportError:  # invoked without PYTHONPATH=src: fix up and retry
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.obs import report


def main() -> int:
    print(
        "DEPRECATED: tools/summarize_table1_log.py is now "
        "`python -m repro.obs.report --log FILE`",
        file=sys.stderr,
    )
    path = sys.argv[1] if len(sys.argv) > 1 else "table1_run.log"
    return report.main(["--log", path])


if __name__ == "__main__":
    sys.exit(main())
