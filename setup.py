"""Setuptools shim for legacy (non-PEP-517) editable installs.

The offline environment ships setuptools without the ``wheel`` package,
so ``pip install -e .`` must fall back to ``--no-use-pep517``; that path
requires this file.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
